/// \file campaign_monitor.hpp
/// \brief Live campaign-fleet view: manifest + per-case telemetry roll-up.
///
/// CampaignMonitor watches a campaign directory the way an operator would —
/// from the outside, through its crash-safe journals — and folds them into a
/// CampaignSnapshot:
///
///   <dir>/manifest.ndjson                the scheduler's run-state journal,
///                                        folded through the *production*
///                                        transition logic
///                                        (sched::apply_manifest_line), so
///                                        the monitor's per-case states are
///                                        bitwise-identical to a fresh
///                                        sched::read_manifest fold;
///   <dir>/<case>/telemetry/run.ndjson    each case's per-step metrics
///                                        stream (rank0/ fallback for
///                                        multi-rank cases): step, simulated
///                                        time, Nu, residuals, health flags;
///   <dir>/sched.ndjson                   the scheduler's own sched.*
///                                        metrics (queue depth, workers
///                                        busy, retries, queue wait) when
///                                        campaign.monitor is enabled —
///                                        tolerated when absent.
///
/// Everything is read incrementally through NdjsonFollower, so the monitor
/// is safe to point at a *running* campaign (it only ever sees fsync'd
/// complete lines) and at a *crashed* one (torn tails are skipped exactly
/// like the resume path skips them). Campaign-clock timestamps are rebased
/// monotone across resume sessions so throughput, ETA and the merged trace
/// stay meaningful after kills.
///
/// Derived signals:
///  * ETA: perfmodel-costed. Each case carries the cost_seconds estimate the
///    scheduler journalled (sched::estimate_case_seconds); the monitor
///    divides the cost already retired (done cases fully, running cases by
///    step progress) by the campaign clock to get a cost retirement rate,
///    and prices the remaining cost at that rate.
///  * Stragglers: a running case whose observed wall-seconds per unit of
///    modelled cost exceeds `straggler_factor` × the median slowdown across
///    comparably progressed cases — the normalized test that stays valid
///    when case costs span decades of Ra.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/ndjson_follower.hpp"
#include "sched/manifest.hpp"

namespace felis::obs {

/// One case as the monitor sees it: manifest fold + declaration + live
/// telemetry + derived progress/straggler signals.
struct CaseView {
  std::string id;

  // Manifest fold (identical to sched::read_manifest).
  std::string state;  ///< "" = declared, never enqueued
  int attempts = 0;
  std::map<std::string, double> metrics;  ///< `done` record metrics

  // Declaration (manifest `case` record).
  int threads = 1;
  std::int64_t steps_planned = 0;
  double cost_seconds = 0;  ///< perfmodel estimate the scheduler journalled
  std::string tenant = "default";  ///< fair-share accounting key (service mode)
  int priority = 0;                ///< admission/preemption rank

  // Campaign-clock timing (monotone across resume sessions).
  double queued_t = -1;    ///< latest queued transition (-1 = never)
  double running_t = -1;   ///< latest running transition
  double finished_t = -1;  ///< latest terminal/retried transition
  double wall_seconds = 0; ///< wall of the latest finished attempt

  // Live per-step telemetry (current attempt's stream).
  bool telemetry_found = false;
  std::int64_t step = 0;
  double sim_time = 0;
  double run_wall_seconds = 0;  ///< telemetry clock of the newest step record
  double cfl = 0;
  double nusselt = 0;
  double pressure_residual = 0;
  double pressure_iterations = 0;
  std::map<std::string, double> health_flags;  ///< health.flags.* counters

  // Derived.
  double progress = 0;   ///< fraction of planned steps ([0,1]; done ⇒ 1)
  double slowdown = 0;   ///< observed wall per modelled cost (0 = unknown)
  bool straggler = false;

  bool terminal() const { return state == "done" || state == "failed"; }
};

/// The whole fleet at one instant.
struct CampaignSnapshot {
  bool manifest_found = false;
  std::string campaign;
  int workers = 0;
  int thread_budget = 0;
  int ranks = 1;
  int resumes = 0;
  double clock_seconds = 0;  ///< campaign clock high water (rebased)

  std::vector<CaseView> cases;  ///< manifest declaration order

  // State roll-up.
  int declared = 0;  ///< never enqueued
  int queued = 0;
  int running = 0;
  int done = 0;
  int failed = 0;
  int retried = 0;
  int preempted = 0;  ///< evicted at a checkpoint boundary, awaiting requeue
  std::int64_t retry_transitions = 0;    ///< `retried` records observed
  std::int64_t preempt_transitions = 0;  ///< `preempted` records observed

  // Service-mode submission roll-up (manifest `submit` records; all zero for
  // batch campaigns that never ran under `felis_campaign --serve`).
  int submissions_admitted = 0;
  int submissions_rejected = 0;
  int submissions_deferred = 0;

  // Perfmodel-costed throughput / ETA.
  double total_cost_seconds = 0;
  double done_cost_seconds = 0;
  double progressed_cost_seconds = 0;  ///< done fully + running pro rata
  double completed_fraction = 0;       ///< cost-weighted
  double cost_rate = 0;                ///< retired cost per clock second
  double eta_seconds = -1;             ///< < 0: unknown (nothing retired yet)

  // Anomaly roll-up (Σ over cases of health.flags.*).
  std::map<std::string, double> health_flags;
  double anomalies = 0;

  // Scheduler-side sched.* stream (absent when campaign.monitor is off).
  bool sched_stream_found = false;
  std::map<std::string, double> sched;  ///< latest flat sched.* values

  /// Every case reached `done`.
  bool complete() const;
  const CaseView* find(const std::string& id) const;
};

class CampaignMonitor {
 public:
  struct Options {
    double straggler_factor = 2.0;  ///< slowdown > factor × median ⇒ flag
    double min_progress = 0.02;     ///< slowdown undefined below this
    usize max_step_marks = 20000;   ///< per-case trace-mark cap
  };

  explicit CampaignMonitor(std::string dir);
  CampaignMonitor(std::string dir, Options options);
  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  /// Tail every journal: the manifest first (it declares the cases), then
  /// each known case's telemetry stream and the sched.* stream. Returns the
  /// number of journal lines consumed. Throws sched::ManifestReplayError on
  /// a protocol-violating manifest, exactly like sched::read_manifest.
  usize poll();

  /// Fold the consumed journals into a fleet snapshot.
  CampaignSnapshot snapshot() const;

  /// The monitor's manifest fold — the equivalence contract: bitwise equal
  /// to sched::read_manifest(dir + "/manifest.ndjson") at every newline
  /// boundary the follower has consumed.
  const sched::ManifestState& manifest_state() const { return manifest_; }

  const std::string& dir() const { return dir_; }
  const Options& options() const { return options_; }

  /// One manifest `run` record, campaign-clock rebased; the merged trace is
  /// built from these (queue intervals, attempt intervals, transitions).
  struct RunEvent {
    std::string case_id;
    std::string state;
    int attempt = 0;
    double t = 0;  ///< rebased campaign clock
    double wall_seconds = 0;
  };
  const std::vector<RunEvent>& run_events() const { return run_events_; }

  /// A step boundary from one case's telemetry stream (current attempt).
  struct StepMark {
    std::int64_t step = 0;
    double wall_seconds = 0;  ///< telemetry clock (since attempt start)
  };
  /// Per-case step marks for the merged trace, declaration order preserved
  /// through snapshot().cases.
  const std::vector<StepMark>& step_marks(const std::string& id) const;

 private:
  struct CaseLive {
    std::unique_ptr<NdjsonFollower> follower;
    int seen_truncations = 0;
    bool found = false;
    std::int64_t step = 0;
    double sim_time = 0;
    double wall_seconds = 0;
    double cfl = 0;
    double nusselt = 0;
    double pressure_residual = 0;
    double pressure_iterations = 0;
    std::map<std::string, double> health_flags;
    std::vector<StepMark> marks;
  };

  void apply_manifest(const std::string& line);
  void apply_case_stream(CaseLive& live, const std::string& line);
  void apply_sched_stream(const std::string& line);
  usize poll_case_streams();
  std::string telemetry_stream_path(const std::string& id) const;
  void note_clock(double t);

  std::string dir_;
  Options options_;
  NdjsonFollower manifest_follower_;
  NdjsonFollower sched_follower_;

  sched::ManifestState manifest_;

  // Manifest header/case/resume fold.
  std::string campaign_;
  int workers_ = 0;
  int thread_budget_ = 0;
  int ranks_ = 1;
  int resumes_ = 0;
  struct CaseDecl {
    int threads = 1;
    std::int64_t steps = 0;
    double cost_seconds = 0;
    std::string tenant = "default";
    int priority = 0;
  };
  std::vector<std::string> case_order_;
  std::map<std::string, CaseDecl> decls_;
  struct CaseTiming {
    double queued_t = -1;
    double running_t = -1;
    double finished_t = -1;
    double wall_seconds = 0;
  };
  std::map<std::string, CaseTiming> timing_;
  std::vector<RunEvent> run_events_;
  std::int64_t retry_transitions_ = 0;
  std::int64_t preempt_transitions_ = 0;

  // Campaign clock, rebased monotone across resume sessions.
  double clock_offset_ = 0;
  double clock_high_water_ = 0;

  std::map<std::string, CaseLive> live_;

  bool sched_stream_found_ = false;
  std::map<std::string, double> sched_latest_;
  double sched_session_offset_ = 0;
};

}  // namespace felis::obs
