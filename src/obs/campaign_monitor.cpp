#include "obs/campaign_monitor.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace felis::obs {

namespace fs = std::filesystem;

namespace {

/// Scan `line` for every `"<prefix><leaf>":<number>` pair and fold it into
/// `out`. Non-numeric values (nested histogram objects) are skipped; a line
/// torn mid-number ends the scan. The journals are writer-controlled flat
/// encodings, so a positional scan is exact — this is one of the two
/// sanctioned NDJSON parsing sites (felis_lint rule raw-ndjson-read).
void extract_prefixed_numbers(const std::string& line, const std::string& prefix,
                              std::map<std::string, double>* out) {
  const std::string needle = "\"" + prefix;
  usize pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    const usize key_begin = pos + 1;
    const usize key_end = line.find('"', key_begin);
    if (key_end == std::string::npos) return;
    if (key_end + 1 >= line.size() || line[key_end + 1] != ':') {
      pos = key_end + 1;
      continue;
    }
    const usize val_begin = key_end + 2;
    if (val_begin >= line.size()) return;
    if (line[val_begin] == '{') {  // histogram object: not a flat number
      pos = val_begin;
      continue;
    }
    try {
      usize used = 0;
      const double v = std::stod(line.substr(val_begin), &used);
      (*out)[line.substr(key_begin, key_end - key_begin)] = v;
      pos = val_begin + used;
    } catch (const std::logic_error&) {
      return;  // torn mid-number
    }
  }
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

bool CampaignSnapshot::complete() const {
  if (cases.empty()) return false;
  return std::all_of(cases.begin(), cases.end(),
                     [](const CaseView& v) { return v.state == "done"; });
}

const CaseView* CampaignSnapshot::find(const std::string& id) const {
  for (const CaseView& v : cases)
    if (v.id == id) return &v;
  return nullptr;
}

CampaignMonitor::CampaignMonitor(std::string dir)
    : CampaignMonitor(std::move(dir), Options()) {}

CampaignMonitor::CampaignMonitor(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(options),
      manifest_follower_((fs::path(dir_) / "manifest.ndjson").string()),
      sched_follower_((fs::path(dir_) / "sched.ndjson").string()) {}

void CampaignMonitor::note_clock(double t) {
  clock_high_water_ = std::max(clock_high_water_, t);
}

std::string CampaignMonitor::telemetry_stream_path(
    const std::string& id) const {
  std::error_code ec;
  const fs::path base = fs::path(dir_) / id / "telemetry";
  const fs::path single = base / "run.ndjson";
  if (fs::is_regular_file(single, ec)) return single.string();
  const fs::path rank0 = base / "rank0" / "run.ndjson";
  if (fs::is_regular_file(rank0, ec)) return rank0.string();
  return "";
}

void CampaignMonitor::apply_manifest(const std::string& line) {
  // The production fold first: the monitor's per-case states ARE the resume
  // protocol's, bitwise (this may throw ManifestReplayError, like resume).
  sched::apply_manifest_line(manifest_, line);

  // Then the monitor-only fields (header, declarations, timings). Same torn
  // guard as the fold: only trust a line that closes its object.
  if (line.empty() || line.back() != '}') return;
  bool has_type = false;
  const std::string type = sched::extract_json_string(line, "type", &has_type);
  if (!has_type) return;
  if (type == "header") {
    campaign_ = sched::extract_json_string(line, "campaign");
    workers_ = static_cast<int>(sched::extract_json_number(line, "workers"));
    thread_budget_ =
        static_cast<int>(sched::extract_json_number(line, "thread_budget"));
    ranks_ = static_cast<int>(sched::extract_json_number(line, "ranks"));
  } else if (type == "case") {
    bool ok = false;
    const std::string id = sched::extract_json_string(line, "case", &ok);
    if (!ok) return;
    CaseDecl decl;
    decl.threads = static_cast<int>(sched::extract_json_number(line, "threads"));
    decl.steps =
        static_cast<std::int64_t>(sched::extract_json_number(line, "steps"));
    decl.cost_seconds = sched::extract_json_number(line, "cost_seconds");
    bool has_tenant = false;
    const std::string tenant =
        sched::extract_json_string(line, "tenant", &has_tenant);
    if (has_tenant) decl.tenant = tenant;
    decl.priority = static_cast<int>(sched::extract_json_number(line, "priority"));
    if (decls_.find(id) == decls_.end()) case_order_.push_back(id);
    decls_[id] = decl;
  } else if (type == "resume") {
    ++resumes_;
    // Each scheduler session restarts its campaign clock at 0; rebase so the
    // monitor's clock stays monotone across sessions.
    clock_offset_ = clock_high_water_;
  } else if (type == "run") {
    bool ok = false;
    const std::string id = sched::extract_json_string(line, "case", &ok);
    if (!ok) return;
    const std::string state = sched::extract_json_string(line, "state", &ok);
    if (!ok) return;
    const int attempt =
        static_cast<int>(sched::extract_json_number(line, "attempt"));
    const double t_abs =
        sched::extract_json_number(line, "t") + clock_offset_;
    const double wall = sched::extract_json_number(line, "wall_seconds");
    note_clock(t_abs);
    if (decls_.find(id) == decls_.end() &&
        timing_.find(id) == timing_.end()) {
      case_order_.push_back(id);  // undeclared but journalled: still shown
    }
    CaseTiming& tm = timing_[id];
    if (state == "queued") {
      tm.queued_t = t_abs;
    } else if (state == "running") {
      tm.running_t = t_abs;
    } else {
      tm.finished_t = t_abs;
      tm.wall_seconds = wall;
      if (state == "retried") ++retry_transitions_;
      if (state == "preempted") ++preempt_transitions_;
    }
    run_events_.push_back({id, state, attempt, t_abs, wall});
  }
}

void CampaignMonitor::apply_case_stream(CaseLive& live,
                                        const std::string& line) {
  bool ok = false;
  const std::string type = sched::extract_json_string(line, "type", &ok);
  if (!ok || type != "step") return;
  bool has_step = false;
  const auto step = static_cast<std::int64_t>(
      sched::extract_json_number(line, "step", &has_step));
  if (!has_step) return;
  live.found = true;
  live.step = std::max(live.step, step);
  live.sim_time = sched::extract_json_number(line, "time");
  live.wall_seconds = sched::extract_json_number(line, "wall_seconds");
  live.cfl = sched::extract_json_number(line, "solver.cfl");
  live.nusselt = sched::extract_json_number(line, "case.nu_volume");
  live.pressure_residual =
      sched::extract_json_number(line, "solver.pressure_residual");
  live.pressure_iterations =
      sched::extract_json_number(line, "solver.pressure_iterations");
  extract_prefixed_numbers(line, "health.flags.", &live.health_flags);
  if (live.marks.size() < options_.max_step_marks)
    live.marks.push_back({step, live.wall_seconds});
}

void CampaignMonitor::apply_sched_stream(const std::string& line) {
  bool ok = false;
  const std::string type = sched::extract_json_string(line, "type", &ok);
  if (!ok) return;
  if (type == "header") {
    // A new scheduler session opened the stream: its t restarts at 0.
    sched_session_offset_ = clock_high_water_;
    return;
  }
  if (type != "sched") return;
  note_clock(sched::extract_json_number(line, "t") + sched_session_offset_);
  extract_prefixed_numbers(line, "sched.", &sched_latest_);
}

usize CampaignMonitor::poll_case_streams() {
  usize consumed = 0;
  std::vector<std::string> lines;
  for (const std::string& id : case_order_) {
    CaseLive& live = live_[id];
    if (!live.follower) {
      const std::string path = telemetry_stream_path(id);
      if (path.empty()) continue;  // case has not started streaming yet
      live.follower = std::make_unique<NdjsonFollower>(path);
    }
    lines.clear();
    consumed += live.follower->poll(&lines);
    if (live.follower->truncations() != live.seen_truncations) {
      // A new attempt restarted the stream from scratch; the polled lines
      // are entirely post-restart content, so drop the stale fold first.
      live.seen_truncations = live.follower->truncations();
      live.found = false;
      live.step = 0;
      live.sim_time = live.wall_seconds = 0;
      live.cfl = live.nusselt = 0;
      live.pressure_residual = live.pressure_iterations = 0;
      live.health_flags.clear();
      live.marks.clear();
    }
    for (const std::string& line : lines) apply_case_stream(live, line);
  }
  return consumed;
}

usize CampaignMonitor::poll() {
  usize consumed = 0;
  std::vector<std::string> lines;

  if (manifest_follower_.exists()) manifest_.found = true;
  consumed += manifest_follower_.poll(&lines);
  for (const std::string& line : lines) apply_manifest(line);

  consumed += poll_case_streams();

  lines.clear();
  if (sched_follower_.exists()) sched_stream_found_ = true;
  consumed += sched_follower_.poll(&lines);
  for (const std::string& line : lines) apply_sched_stream(line);
  return consumed;
}

const std::vector<CampaignMonitor::StepMark>& CampaignMonitor::step_marks(
    const std::string& id) const {
  static const std::vector<StepMark> kEmpty;
  const auto it = live_.find(id);
  return it != live_.end() ? it->second.marks : kEmpty;
}

CampaignSnapshot CampaignMonitor::snapshot() const {
  CampaignSnapshot snap;
  snap.manifest_found = manifest_.found;
  snap.campaign = campaign_;
  snap.workers = workers_;
  snap.thread_budget = thread_budget_;
  snap.ranks = ranks_;
  snap.resumes = resumes_;
  snap.clock_seconds = clock_high_water_;
  snap.retry_transitions = retry_transitions_;
  snap.preempt_transitions = preempt_transitions_;
  snap.sched_stream_found = sched_stream_found_;
  snap.sched = sched_latest_;

  // Service-mode submission decisions, straight off the production fold.
  for (const auto& [id, sub] : manifest_.submissions) {
    (void)id;
    if (sub.decision == "admitted") ++snap.submissions_admitted;
    else if (sub.decision == "rejected") ++snap.submissions_rejected;
    else if (sub.decision == "deferred") ++snap.submissions_deferred;
  }

  for (const std::string& id : case_order_) {
    CaseView v;
    v.id = id;
    const auto decl = decls_.find(id);
    if (decl != decls_.end()) {
      v.threads = decl->second.threads;
      v.steps_planned = decl->second.steps;
      v.cost_seconds = decl->second.cost_seconds;
      v.tenant = decl->second.tenant;
      v.priority = decl->second.priority;
    }
    const auto folded = manifest_.cases.find(id);
    if (folded != manifest_.cases.end()) {
      v.state = folded->second.state;
      v.attempts = folded->second.attempts;
      v.metrics = folded->second.metrics;
    }
    const auto tm = timing_.find(id);
    if (tm != timing_.end()) {
      v.queued_t = tm->second.queued_t;
      v.running_t = tm->second.running_t;
      v.finished_t = tm->second.finished_t;
      v.wall_seconds = tm->second.wall_seconds;
    }
    const auto live = live_.find(id);
    if (live != live_.end() && live->second.found) {
      const CaseLive& l = live->second;
      v.telemetry_found = true;
      v.step = l.step;
      v.sim_time = l.sim_time;
      v.run_wall_seconds = l.wall_seconds;
      v.cfl = l.cfl;
      v.nusselt = l.nusselt;
      v.pressure_residual = l.pressure_residual;
      v.pressure_iterations = l.pressure_iterations;
      v.health_flags = l.health_flags;
    }

    if (v.state == "done") {
      v.progress = 1.0;
    } else if (v.steps_planned > 0 && v.telemetry_found) {
      v.progress = clamp01(static_cast<double>(v.step) /
                           static_cast<double>(v.steps_planned));
    }

    if (v.state.empty()) ++snap.declared;
    else if (v.state == "queued") ++snap.queued;
    else if (v.state == "running") ++snap.running;
    else if (v.state == "done") ++snap.done;
    else if (v.state == "failed") ++snap.failed;
    else if (v.state == "retried") ++snap.retried;
    else if (v.state == "preempted") ++snap.preempted;

    snap.total_cost_seconds += v.cost_seconds;
    const double retired = v.cost_seconds * v.progress;
    snap.progressed_cost_seconds += retired;
    if (v.state == "done") snap.done_cost_seconds += v.cost_seconds;

    // Normalized slowdown: observed wall-seconds per modelled cost actually
    // retired. Comparable across cases whose absolute costs differ by
    // decades of Ra — the basis of the straggler test below.
    double observed_wall = 0;
    if (v.terminal()) observed_wall = v.wall_seconds;
    else if (v.telemetry_found) observed_wall = v.run_wall_seconds;
    if (retired > 0 && v.progress >= options_.min_progress &&
        observed_wall > 0) {
      v.slowdown = observed_wall / retired;
    }

    for (const auto& [flag, n] : v.health_flags) {
      snap.health_flags[flag] += n;
      snap.anomalies += n;
    }
    snap.cases.push_back(std::move(v));
  }

  if (snap.total_cost_seconds > 0) {
    snap.completed_fraction =
        snap.progressed_cost_seconds / snap.total_cost_seconds;
  }
  if (snap.clock_seconds > 0) {
    snap.cost_rate = snap.progressed_cost_seconds / snap.clock_seconds;
  }
  double remaining = 0;
  for (const CaseView& v : snap.cases) {
    if (!v.terminal()) remaining += v.cost_seconds * (1.0 - v.progress);
  }
  if (remaining <= 0) {
    snap.eta_seconds = 0;
  } else if (snap.cost_rate > 0) {
    snap.eta_seconds = remaining / snap.cost_rate;
  }

  // Straggler detection against the fleet's median slowdown: needs at least
  // three comparably progressed cases for a median to mean anything.
  std::vector<double> slowdowns;
  for (const CaseView& v : snap.cases)
    if (v.slowdown > 0) slowdowns.push_back(v.slowdown);
  if (slowdowns.size() >= 3) {
    const usize mid = slowdowns.size() / 2;
    std::nth_element(slowdowns.begin(), slowdowns.begin() + mid,
                     slowdowns.end());
    const double median = slowdowns[mid];
    for (CaseView& v : snap.cases) {
      v.straggler = v.state == "running" && v.slowdown > 0 && median > 0 &&
                    v.slowdown > options_.straggler_factor * median;
    }
  }
  return snap;
}

}  // namespace felis::obs
