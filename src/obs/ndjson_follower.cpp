#include "obs/ndjson_follower.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace felis::obs {

NdjsonFollower::NdjsonFollower(std::string path) : path_(std::move(path)) {}

bool NdjsonFollower::exists() const {
  std::error_code ec;
  return std::filesystem::is_regular_file(path_, ec);
}

usize NdjsonFollower::poll(std::vector<std::string>* lines) {
  std::error_code ec;
  const std::uintmax_t raw_size = std::filesystem::file_size(path_, ec);
  if (ec) return 0;  // missing (or racing a replace): try again next poll
  const auto size = static_cast<std::uint64_t>(raw_size);

  if (size < offset_) {
    // The journal shrank below what we consumed: truncated or replaced
    // (per-attempt telemetry streams restart from scratch). Re-deliver the
    // new content from byte 0; the caller drops its stale fold via
    // truncations().
    offset_ = 0;
    ++truncations_;
  }
  if (size == offset_) return 0;

  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) return 0;
  in.seekg(static_cast<std::streamoff>(offset_));
  std::string chunk(static_cast<usize>(size - offset_), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  chunk.resize(static_cast<usize>(in.gcount()));
  if (chunk.empty()) return 0;

  // Only newline-terminated lines are complete; an unterminated tail (torn
  // by a kill or racing mid-append) stays unconsumed for the next poll.
  const auto last_newline = chunk.rfind('\n');
  if (last_newline == std::string::npos) return 0;

  usize appended = 0;
  usize begin = 0;
  while (begin <= last_newline) {
    const usize end = chunk.find('\n', begin);
    if (lines) lines->push_back(chunk.substr(begin, end - begin));
    ++appended;
    begin = end + 1;
  }
  offset_ += last_newline + 1;
  return appended;
}

}  // namespace felis::obs
