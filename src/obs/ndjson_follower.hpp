/// \file ndjson_follower.hpp
/// \brief Crash-tolerant incremental tail reader for NDJSON journals.
///
/// Every felis journal (campaign manifest, per-step telemetry stream, the
/// scheduler's sched.ndjson) is written through io::DurableAppendWriter:
/// append-only, fsync-per-record, at most one torn final line after a kill.
/// NdjsonFollower is the matching read side for a *live* journal: each
/// poll() reads only the bytes appended since the last poll and returns the
/// newly *completed* lines.
///
/// Torn-tail discipline: a line is complete only once its trailing newline
/// is on disk. Bytes after the last newline — a record torn by a kill, or
/// one racing mid-append — are never consumed; the follower's offset stays
/// at the last newline and re-examines the tail on the next poll. A torn
/// tail that the writer later self-heals (DurableAppendWriter appends a
/// newline before resuming) is then delivered as a complete — possibly
/// malformed — line, which the journal folds already ignore.
///
/// A missing file is not an error (the producer may not have started); the
/// follower keeps checking. A file that *shrinks* below the consumed offset
/// was truncated or replaced (per-run telemetry streams restart on every
/// attempt): the follower restarts from byte 0, re-delivers the new content
/// and counts the reset in truncations() so callers can drop stale state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace felis::obs {

class NdjsonFollower {
 public:
  explicit NdjsonFollower(std::string path);

  /// Append every line completed since the last poll (newline stripped) to
  /// `lines`; returns how many were appended.
  usize poll(std::vector<std::string>* lines);

  /// The file currently exists (checked, not cached).
  bool exists() const;

  const std::string& path() const { return path_; }

  /// Byte offset of the first unconsumed byte (== file size minus any
  /// unterminated tail, after a poll).
  std::uint64_t offset() const { return offset_; }

  /// How many times the file shrank below offset() and the follower
  /// restarted from byte 0 (journal truncated or replaced).
  int truncations() const { return truncations_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  int truncations_ = 0;
};

}  // namespace felis::obs
