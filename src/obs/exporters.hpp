/// \file exporters.hpp
/// \brief Campaign observability exporters: JSON status, Prometheus text
/// exposition, merged Chrome trace.
///
/// Three read-only views over one CampaignMonitor, for three consumers:
///
///  * status_json()        machine-readable snapshot (schema
///                         felis-campaign-status-1) — per-case states exactly
///                         equal to the manifest fold, progress/ETA/straggler
///                         roll-ups, health flags;
///  * status_prometheus()  Prometheus/OpenMetrics-style text exposition
///                         (felis_campaign_* samples) for scrape-based
///                         dashboards;
///  * campaign_trace_json() a Chrome trace_event file placing each case on
///                         its own track (pid per case: queue-wait and
///                         attempt intervals, per-step instants rebased onto
///                         the campaign clock) with the scheduler's queue and
///                         transition events interleaved on pid 1. Validated
///                         by tools/felis_trace.py --check (otherData carries
///                         "merged":"campaign").
///
/// write_status_files() persists the first two next to the manifest through
/// io::AtomicFileWriter, so a concurrently running scraper never reads a
/// torn snapshot.
#pragma once

#include <string>

#include "obs/campaign_monitor.hpp"

namespace felis::obs {

inline constexpr const char* kStatusSchema = "felis-campaign-status-1";

/// Pretty-printed JSON status document for `snap`.
std::string status_json(const CampaignSnapshot& snap);

/// Prometheus-style text exposition for `snap`.
std::string status_prometheus(const CampaignSnapshot& snap);

/// Merged Chrome trace built from the monitor's run events and per-case
/// step marks.
std::string campaign_trace_json(const CampaignMonitor& monitor);

struct StatusPaths {
  std::string json;  ///< <dir>/status.json
  std::string prom;  ///< <dir>/status.prom
};

/// Atomically write status.json and status.prom into `dir`.
StatusPaths write_status_files(const CampaignMonitor& monitor,
                               const std::string& dir);

}  // namespace felis::obs
