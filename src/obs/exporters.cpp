#include "obs/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>

#include "io/atomic_file.hpp"
#include "telemetry/chrome_trace.hpp"

namespace felis::obs {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + telemetry::json_escape(s) + "\"";
}

void emit_flat_map(std::ostringstream& os,
                   const std::map<std::string, double>& m) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : m) {
    if (!first) os << ',';
    first = false;
    os << quoted(key) << ':' << num(value);
  }
  os << '}';
}

/// Prometheus label values: escape backslash, double quote and newline.
std::string prom_label(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Metric-name sanitization: dots become underscores.
std::string prom_name(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (c == '.') c = '_';
  return out;
}

std::int64_t usec(double seconds) {
  const double us = seconds * 1e6;
  return us > 0 ? static_cast<std::int64_t>(std::llround(us)) : 0;
}

}  // namespace

std::string status_json(const CampaignSnapshot& snap) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"type\": \"campaign_status\",\n";
  os << "  \"schema\": " << quoted(kStatusSchema) << ",\n";
  os << "  \"campaign\": " << quoted(snap.campaign) << ",\n";
  os << "  \"manifest_found\": " << (snap.manifest_found ? "true" : "false")
     << ",\n";
  os << "  \"workers\": " << snap.workers << ",\n";
  os << "  \"thread_budget\": " << snap.thread_budget << ",\n";
  os << "  \"ranks\": " << snap.ranks << ",\n";
  os << "  \"resumes\": " << snap.resumes << ",\n";
  os << "  \"clock_seconds\": " << num(snap.clock_seconds) << ",\n";
  os << "  \"counts\": {\"declared\": " << snap.declared
     << ", \"queued\": " << snap.queued << ", \"running\": " << snap.running
     << ", \"done\": " << snap.done << ", \"failed\": " << snap.failed
     << ", \"retried\": " << snap.retried
     << ", \"preempted\": " << snap.preempted << "},\n";
  os << "  \"retry_transitions\": " << snap.retry_transitions << ",\n";
  os << "  \"service\": {\"admitted\": " << snap.submissions_admitted
     << ", \"rejected\": " << snap.submissions_rejected
     << ", \"deferred\": " << snap.submissions_deferred
     << ", \"preemptions\": " << snap.preempt_transitions << "},\n";
  os << "  \"progress\": {\"total_cost_seconds\": "
     << num(snap.total_cost_seconds)
     << ", \"done_cost_seconds\": " << num(snap.done_cost_seconds)
     << ", \"progressed_cost_seconds\": " << num(snap.progressed_cost_seconds)
     << ", \"completed_fraction\": " << num(snap.completed_fraction)
     << ", \"cost_rate\": " << num(snap.cost_rate)
     << ", \"eta_seconds\": " << num(snap.eta_seconds) << "},\n";
  os << "  \"health\": {\"anomalies\": " << num(snap.anomalies)
     << ", \"flags\": ";
  emit_flat_map(os, snap.health_flags);
  os << "},\n";
  os << "  \"sched_stream_found\": "
     << (snap.sched_stream_found ? "true" : "false") << ",\n";
  os << "  \"sched\": ";
  emit_flat_map(os, snap.sched);
  os << ",\n";
  os << "  \"cases\": [\n";
  bool first = true;
  for (const CaseView& v : snap.cases) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"case\": " << quoted(v.id) << ", \"state\": "
       << quoted(v.state) << ", \"attempts\": " << v.attempts
       << ", \"tenant\": " << quoted(v.tenant)
       << ", \"priority\": " << v.priority
       << ", \"threads\": " << v.threads
       << ", \"steps_planned\": " << v.steps_planned
       << ", \"step\": " << v.step << ", \"time\": " << num(v.sim_time)
       << ", \"progress\": " << num(v.progress)
       << ", \"cost_seconds\": " << num(v.cost_seconds)
       << ", \"wall_seconds\": " << num(v.wall_seconds)
       << ", \"queued_t\": " << num(v.queued_t)
       << ", \"running_t\": " << num(v.running_t)
       << ", \"finished_t\": " << num(v.finished_t)
       << ", \"telemetry_found\": " << (v.telemetry_found ? "true" : "false")
       << ", \"nu_volume\": " << num(v.nusselt)
       << ", \"cfl\": " << num(v.cfl)
       << ", \"pressure_residual\": " << num(v.pressure_residual)
       << ", \"pressure_iterations\": " << num(v.pressure_iterations)
       << ", \"slowdown\": " << num(v.slowdown)
       << ", \"straggler\": " << (v.straggler ? "true" : "false")
       << ", \"health_flags\": ";
    emit_flat_map(os, v.health_flags);
    os << ", \"metrics\": ";
    emit_flat_map(os, v.metrics);
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string status_prometheus(const CampaignSnapshot& snap) {
  std::ostringstream os;
  os << "# HELP felis_campaign_info Campaign identity (value is always 1).\n"
     << "# TYPE felis_campaign_info gauge\n"
     << "felis_campaign_info{campaign=\"" << prom_label(snap.campaign)
     << "\"} 1\n";
  os << "# HELP felis_campaign_cases Cases by folded manifest state.\n"
     << "# TYPE felis_campaign_cases gauge\n";
  const std::map<std::string, int> counts = {
      {"declared", snap.declared}, {"queued", snap.queued},
      {"running", snap.running},   {"done", snap.done},
      {"failed", snap.failed},     {"retried", snap.retried},
      {"preempted", snap.preempted}};
  for (const auto& [state, n] : counts)
    os << "felis_campaign_cases{state=\"" << state << "\"} " << n << "\n";
  os << "# TYPE felis_campaign_retry_transitions_total counter\n"
     << "felis_campaign_retry_transitions_total " << snap.retry_transitions
     << "\n";
  os << "# HELP felis_campaign_submissions_total Service-mode spool "
        "admission decisions by outcome.\n"
     << "# TYPE felis_campaign_submissions_total counter\n"
     << "felis_campaign_submissions_total{decision=\"admitted\"} "
     << snap.submissions_admitted << "\n"
     << "felis_campaign_submissions_total{decision=\"rejected\"} "
     << snap.submissions_rejected << "\n"
     << "felis_campaign_submissions_total{decision=\"deferred\"} "
     << snap.submissions_deferred << "\n";
  os << "# TYPE felis_campaign_preemptions_total counter\n"
     << "felis_campaign_preemptions_total " << snap.preempt_transitions
     << "\n";
  os << "# TYPE felis_campaign_resumes_total counter\n"
     << "felis_campaign_resumes_total " << snap.resumes << "\n";
  os << "# TYPE felis_campaign_clock_seconds gauge\n"
     << "felis_campaign_clock_seconds " << num(snap.clock_seconds) << "\n";
  os << "# HELP felis_campaign_completed_fraction Cost-weighted campaign "
        "progress in [0,1].\n"
     << "# TYPE felis_campaign_completed_fraction gauge\n"
     << "felis_campaign_completed_fraction " << num(snap.completed_fraction)
     << "\n";
  os << "# TYPE felis_campaign_cost_rate gauge\n"
     << "felis_campaign_cost_rate " << num(snap.cost_rate) << "\n";
  os << "# HELP felis_campaign_eta_seconds Perfmodel-costed time to "
        "completion (-1 = unknown).\n"
     << "# TYPE felis_campaign_eta_seconds gauge\n"
     << "felis_campaign_eta_seconds " << num(snap.eta_seconds) << "\n";
  os << "# TYPE felis_campaign_anomalies_total counter\n"
     << "felis_campaign_anomalies_total " << num(snap.anomalies) << "\n";
  os << "# HELP felis_campaign_health_flags Anomaly detections by class "
        "(summed over cases).\n"
     << "# TYPE felis_campaign_health_flags counter\n";
  for (const auto& [flag, n] : snap.health_flags) {
    static constexpr const char* kPrefix = "health.flags.";
    const std::string leaf = flag.rfind(kPrefix, 0) == 0
                                 ? flag.substr(std::string(kPrefix).size())
                                 : flag;
    os << "felis_campaign_health_flags{class=\"" << prom_label(leaf) << "\"} "
       << num(n) << "\n";
  }
  os << "# TYPE felis_campaign_case_progress gauge\n";
  for (const CaseView& v : snap.cases)
    os << "felis_campaign_case_progress{case=\"" << prom_label(v.id) << "\"} "
       << num(v.progress) << "\n";
  os << "# TYPE felis_campaign_case_step gauge\n";
  for (const CaseView& v : snap.cases)
    os << "felis_campaign_case_step{case=\"" << prom_label(v.id) << "\"} "
       << v.step << "\n";
  os << "# TYPE felis_campaign_case_attempts gauge\n";
  for (const CaseView& v : snap.cases)
    os << "felis_campaign_case_attempts{case=\"" << prom_label(v.id) << "\"} "
       << v.attempts << "\n";
  os << "# HELP felis_campaign_case_straggler 1 when the case runs slower "
        "than the fleet's normalized median by the straggler factor.\n"
     << "# TYPE felis_campaign_case_straggler gauge\n";
  for (const CaseView& v : snap.cases)
    os << "felis_campaign_case_straggler{case=\"" << prom_label(v.id)
       << "\"} " << (v.straggler ? 1 : 0) << "\n";
  for (const auto& [key, value] : snap.sched) {
    os << "# TYPE felis_" << prom_name(key) << " gauge\n"
       << "felis_" << prom_name(key) << " " << num(value) << "\n";
  }
  return os.str();
}

std::string campaign_trace_json(const CampaignMonitor& monitor) {
  const CampaignSnapshot snap = monitor.snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&os, &first](const std::string& event) {
    if (!first) os << ",\n";
    first = false;
    os << event;
  };
  const auto meta = [&](int pid, int tid, const char* what,
                        const std::string& name) {
    std::ostringstream e;
    e << R"({"name":")" << what << R"(","ph":"M","pid":)" << pid;
    if (tid >= 0) e << R"(,"tid":)" << tid;
    e << R"(,"args":{"name":)" << quoted(name) << "}}";
    emit(e.str());
  };
  const auto complete = [&](int pid, int tid, const std::string& name,
                            const char* cat, double t0, double t1,
                            const std::string& args_json) {
    std::ostringstream e;
    e << R"({"name":)" << quoted(name) << R"(,"cat":")" << cat
      << R"(","ph":"X","ts":)" << usec(t0) << R"(,"dur":)"
      << std::max<std::int64_t>(0, usec(t1) - usec(t0)) << R"(,"pid":)" << pid
      << R"(,"tid":)" << tid;
    if (!args_json.empty()) e << R"(,"args":)" << args_json;
    e << '}';
    emit(e.str());
  };
  const auto instant = [&](int pid, int tid, const std::string& name,
                           const char* cat, double t) {
    std::ostringstream e;
    e << R"({"name":)" << quoted(name) << R"(,"cat":")" << cat
      << R"(","ph":"i","s":"t","ts":)" << usec(t) << R"(,"pid":)" << pid
      << R"(,"tid":)" << tid << '}';
    emit(e.str());
  };

  // Track layout: pid 1 is the scheduler (queue-wait intervals + transition
  // instants); every case gets its own process, pid 100+i in declaration
  // order (attempt intervals + per-step instants rebased to the campaign
  // clock via the attempt's `running` timestamp).
  meta(1, -1, "process_name", "scheduler");
  meta(1, 1, "thread_name", "queue");
  meta(1, 2, "thread_name", "transitions");
  std::map<std::string, int> case_pid;
  for (usize i = 0; i < snap.cases.size(); ++i) {
    const int pid = 100 + static_cast<int>(i);
    case_pid[snap.cases[i].id] = pid;
    meta(pid, -1, "process_name", snap.cases[i].id);
    meta(pid, 1, "thread_name", "attempts");
    meta(pid, 2, "thread_name", "steps");
  }

  std::map<std::string, double> pending_queued;
  std::map<std::string, double> pending_running;
  for (const CampaignMonitor::RunEvent& e : monitor.run_events()) {
    const auto pid_it = case_pid.find(e.case_id);
    if (pid_it == case_pid.end()) continue;
    instant(1, 2, e.case_id + " -> " + e.state, "sched", e.t);
    if (e.state == "queued") {
      pending_queued[e.case_id] = e.t;
    } else if (e.state == "running") {
      const auto q = pending_queued.find(e.case_id);
      if (q != pending_queued.end()) {
        std::ostringstream args;
        args << R"({"attempt":)" << e.attempt << '}';
        complete(1, 1, e.case_id, "sched", q->second, e.t, args.str());
        pending_queued.erase(q);
      }
      pending_running[e.case_id] = e.t;
    } else {
      const auto r = pending_running.find(e.case_id);
      if (r != pending_running.end()) {
        std::ostringstream args;
        args << R"({"state":")" << e.state << R"(","attempt":)" << e.attempt
             << '}';
        complete(pid_it->second, 1,
                 "attempt " + std::to_string(e.attempt) + " (" + e.state + ")",
                 "sched", r->second, e.t, args.str());
        pending_running.erase(r);
      }
    }
  }

  for (const CaseView& v : snap.cases) {
    const int pid = case_pid[v.id];
    const double base = v.running_t >= 0 ? v.running_t : 0.0;
    for (const CampaignMonitor::StepMark& mark : monitor.step_marks(v.id)) {
      instant(pid, 2, "step " + std::to_string(mark.step), "step",
              base + mark.wall_seconds);
    }
  }

  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
     << R"("merged":"campaign","campaign":)" << quoted(snap.campaign)
     << R"(,"cases":")" << snap.cases.size() << R"(","workers":")"
     << snap.workers << R"(","thread_budget":")" << snap.thread_budget
     << R"(","resumes":")" << snap.resumes << R"(","clock_seconds":")"
     << num(snap.clock_seconds) << "\"}}\n";
  return os.str();
}

StatusPaths write_status_files(const CampaignMonitor& monitor,
                               const std::string& dir) {
  const CampaignSnapshot snap = monitor.snapshot();
  StatusPaths paths;
  paths.json = (std::filesystem::path(dir) / "status.json").string();
  paths.prom = (std::filesystem::path(dir) / "status.prom").string();
  {
    io::AtomicFileWriter writer(paths.json);
    writer.stream() << status_json(snap);
    writer.commit();
  }
  {
    io::AtomicFileWriter writer(paths.prom);
    writer.stream() << status_prometheus(snap);
    writer.commit();
  }
  return paths;
}

}  // namespace felis::obs
