/// \file mesh_stats.hpp
/// \brief Partition statistics of the production RBC mesh, computed
/// analytically (the 108M-element mesh is never materialized; see DESIGN.md).
///
/// The paper's mesh: "composed of 108M elements and polynomial degree 7,
/// corresponding to 37B unique grid points and more than 148B degrees of
/// freedom", in a slender cylinder of aspect ratio 1:10 (§6). The partition
/// model is the z-slab decomposition that recursive coordinate bisection
/// produces on a slender cell (each rank owns a contiguous stack of disk
/// layers), with the disk split further once ranks outnumber layers.
#pragma once

#include <cmath>

#include "perfmodel/workload.hpp"

namespace felis::perfmodel {

struct ProductionMesh {
  std::string name;
  double disk_elements = 432;   ///< elements per z-layer of the o-grid disk
  double layers = 250000;       ///< z-layers
  int degree = 7;

  double total_elements() const { return disk_elements * layers; }
  double unique_grid_points() const {
    // Box-topology estimate: (N·n_axis + 1) per direction; for the slender
    // cell the layered structure dominates: disk_points × z_points.
    const double per_dir = std::sqrt(disk_elements);
    const double disk_points = (degree * per_dir + 1) * (degree * per_dir + 1);
    return disk_points * (degree * layers + 1);
  }
  double dofs() const { return unique_grid_points() * 4; }  ///< u,v,w,T
};

/// The paper's production configuration: 108M elements, N=7, ~37B points.
inline ProductionMesh paper_production_mesh() {
  ProductionMesh m;
  m.name = "RBC cylinder 1:10, Ra=1e15";
  m.disk_elements = 432;
  m.layers = 250000;
  m.degree = 7;
  return m;
}

/// Analytic per-rank partition statistics for P ranks.
inline PartitionStats production_partition(const ProductionMesh& mesh, int ranks) {
  PartitionStats s;
  const double n1 = mesh.degree + 1;
  const double face_nodes = n1 * n1;
  if (ranks <= mesh.layers) {
    // z-slabs: each rank owns layers/P disk layers; halo = 2 disk cuts.
    s.local_elements = mesh.total_elements() / ranks;
    s.neighbors = (ranks > 1) ? 2 : 0;
    s.shared_nodes = (ranks > 1) ? 2 * mesh.disk_elements * face_nodes : 0;
    // Coarse grid shares the cut's vertices: (N=1) face per element.
    s.coarse_shared_nodes = (ranks > 1) ? 2 * mesh.disk_elements * 4 : 0;
  } else {
    // Disk split into sectors as well: q sectors per layer-slab.
    const double q = std::ceil(static_cast<double>(ranks) / mesh.layers);
    s.local_elements = mesh.total_elements() / ranks;
    const double sector_width = std::sqrt(mesh.disk_elements / q);
    s.neighbors = 2 + 2;
    s.shared_nodes =
        2 * (mesh.disk_elements / q) * face_nodes + 2 * sector_width * face_nodes;
    s.coarse_shared_nodes = 2 * (mesh.disk_elements / q) * 4 + 2 * sector_width * 4;
  }
  return s;
}

}  // namespace felis::perfmodel
