/// \file workload.hpp
/// \brief Per-step operation counts of the RBC solver, assembled from the
/// same kernel inventory the real code executes.
///
/// The strong-scaling predictor (Fig. 3) needs, for every solver phase, the
/// flops, memory traffic, messages and reductions one rank performs per time
/// step. These are derived from the discretization parameters (local element
/// count, polynomial degree), the measured Krylov iteration counts of real
/// felis runs, and the analytic partition statistics of the production mesh.
/// The kernel footprints mirror operators/ops.cpp's instrumentation
/// formulas, so a real run's Profiler counters validate the model (see
/// tests/test_perfmodel.cpp).
#pragma once

#include <map>
#include <string>

#include "perfmodel/machine.hpp"

namespace felis::perfmodel {

/// Aggregated cost of one solver phase per time step (one rank).
struct PhaseCost {
  double flops = 0;
  double bytes = 0;        ///< field + metric traffic (device memory)
  double launches = 0;     ///< kernel launches (host latency)
  double messages = 0;     ///< point-to-point halo messages
  double message_bytes = 0;
  double reductions = 0;   ///< global allreduces (Krylov dot products)

  PhaseCost& operator+=(const PhaseCost& o) {
    flops += o.flops;
    bytes += o.bytes;
    launches += o.launches;
    messages += o.messages;
    message_bytes += o.message_bytes;
    reductions += o.reductions;
    return *this;
  }
  PhaseCost scaled(double f) const {
    PhaseCost c = *this;
    c.flops *= f;
    c.bytes *= f;
    c.launches *= f;
    c.messages *= f;
    c.message_bytes *= f;
    c.reductions *= f;
    return c;
  }
};

using StepWorkload = std::map<std::string, PhaseCost>;

/// Krylov iteration counts per step, measured from real felis runs
/// (bench_fig3 extracts them from StepInfo histories).
struct SolverCounts {
  /// Defaults reflect the production regime (high-Ra turbulence, tight
  /// pressure tolerance): bench_fig3 also reports with counts *measured*
  /// from real laptop-scale felis runs.
  double pressure_iterations = 40;  ///< GMRES+HSMG
  double velocity_iterations = 9;   ///< CG, summed over 3 components
  double scalar_iterations = 4;     ///< CG
  int coarse_iterations = 10;       ///< fixed PCG inside HSMG
};

/// Rank-local partition statistics (real or analytic; see mesh_stats.hpp).
struct PartitionStats {
  double local_elements = 0;
  double neighbors = 0;            ///< gather–scatter peers
  double shared_nodes = 0;         ///< fine-grid doubles exchanged per GS
  double coarse_shared_nodes = 0;  ///< coarse-grid doubles per GS
};

/// Assemble the per-step workload for one rank. `ranks` sizes the
/// reductions' log factor (taken by Machine::allreduce_time later).
StepWorkload estimate_step_workload(const PartitionStats& part, int degree,
                                    const SolverCounts& counts);

/// Wall-time of one phase on a machine: kernels (roofline + launch) plus
/// communication (halo messages + reductions).
double phase_time(const Machine& machine, const PhaseCost& phase, int ranks);

/// Total step time and per-phase breakdown.
struct StepPrediction {
  double total = 0;
  std::map<std::string, double> phase_seconds;
};
StepPrediction predict_step(const Machine& machine, const StepWorkload& load,
                            int ranks);

}  // namespace felis::perfmodel
