/// \file scaling.hpp
/// \brief Strong-scaling predictor: regenerates Fig. 3 (time per step vs
/// device count on LUMI and Leonardo) and Fig. 4 (wall-time distribution)
/// from the workload model, including the overlapped-preconditioner effect.
#pragma once

#include <vector>

#include "perfmodel/mesh_stats.hpp"

namespace felis::perfmodel {

struct ScalingPoint {
  int devices = 0;
  double seconds_per_step = 0;
  double parallel_efficiency = 0;    ///< vs the smallest measured count
  double elements_per_device = 0;
  std::map<std::string, double> phase_seconds;
};

struct ScalingOptions {
  /// Task-overlap of the coarse-grid solve (§5.3): when on, the coarse
  /// latency-bound time hides under the fine smoother within the pressure
  /// preconditioner.
  bool overlap_coarse = true;
  SolverCounts counts;
};

/// Predict time/step across the given device counts on one machine.
std::vector<ScalingPoint> predict_strong_scaling(
    const Machine& machine, const ProductionMesh& mesh,
    const std::vector<int>& device_counts, const ScalingOptions& options);

/// Predicted step time at one device count, splitting out the coarse-grid
/// share so the overlapped variant can be modelled.
StepPrediction predict_with_overlap(const Machine& machine,
                                    const ProductionMesh& mesh, int devices,
                                    const ScalingOptions& options);

}  // namespace felis::perfmodel
