/// \file event_sim.hpp
/// \brief Discrete-event simulator of host threads submitting kernels to GPU
/// streams — the machinery behind the Fig. 2 reproduction.
///
/// Fig. 2 traces the serial vs task-parallel additive Schwarz preconditioner
/// on an A100 node: the serial schedule suffers launch-latency gaps between
/// the many small coarse-solve kernels and host-blocking MPI waits, while
/// the task-parallel schedule launches the coarse chain from a second OpenMP
/// thread into a second (high-priority) stream, hiding its latency under the
/// large smoother kernels. This simulator replays exactly that structure:
///
///  * each host thread submits its task list in order; every submission
///    costs the kernel-launch latency (asynchronous launch);
///  * each stream executes its tasks in submission order, concurrently with
///    other streams;
///  * a host-blocking task (MPI wait, reduction) first waits for the
///    stream's prior work to finish (host-initiated GPU-aware MPI, §5.3),
///    then occupies the host; subsequent tasks on that stream cannot start
///    before it completes.
#pragma once

#include <string>
#include <vector>

#include "device/stream.hpp"

namespace felis::perfmodel {

struct SimTask {
  std::string name;
  int host = 0;              ///< submitting host thread
  int stream = 0;            ///< executing device stream
  double device_seconds = 0; ///< kernel execution time (0 = host-only task)
  double host_block = 0;     ///< host-blocking time (MPI wait / reduction)
};

struct SimResult {
  double makespan = 0;
  std::vector<double> device_busy;   ///< per stream, total kernel time
  std::vector<device::TraceEvent> trace;

  double utilization() const {
    double busy = 0;
    for (const double b : device_busy) busy += b;
    return makespan > 0 ? busy / makespan : 0;
  }
};

/// Simulate the schedule. Tasks of each host thread run in vector order.
SimResult simulate_streams(const std::vector<SimTask>& tasks,
                           double launch_latency);

}  // namespace felis::perfmodel
