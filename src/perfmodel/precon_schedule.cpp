#include "perfmodel/precon_schedule.hpp"

#include <cmath>

namespace felis::perfmodel {

PreconSchedule build_precon_schedule(const Machine& machine, double elements,
                                     int degree, int coarse_iterations,
                                     int ranks, const PartitionStats& part) {
  const double n = degree + 1;
  const double npe = n * n * n;
  const double kReal = sizeof(real_t);

  // Fine term: three FDM transform kernels (large, bandwidth-bound), the
  // gather–scatter (pack kernel + host-blocking halo wait + scatter kernel)
  // and the multiplicity weighting.
  const double fdm_chunk =
      machine.kernel_time(4 * elements * npe * n, 2 * elements * npe * kReal);
  const double pack = machine.kernel_time(0, elements * npe * kReal);
  const double halo_wait =
      part.neighbors * machine.message_time(
                           static_cast<usize>(part.shared_nodes * kReal /
                                              std::max(part.neighbors, 1.0))) +
      machine.network.gpu_sync_overhead;
  const double weight = machine.kernel_time(elements * npe, elements * npe * kReal);

  // Coarse term: restriction, `coarse_iterations` PCG iterations of tiny
  // kernels and two reductions each, prolongation.
  const double transfer =
      machine.kernel_time(elements * 16 * n, elements * (npe + 16) * kReal);
  const double coarse_kernel =
      machine.kernel_time(elements * 8 * 20, elements * 8 * 4 * kReal);
  const double reduce = machine.allreduce_time(ranks, sizeof(real_t));
  const double coarse_halo =
      part.neighbors *
          machine.message_time(static_cast<usize>(
              part.coarse_shared_nodes * kReal / std::max(part.neighbors, 1.0))) +
      machine.network.gpu_sync_overhead;

  PreconSchedule sched;
  sched.launch_latency = machine.device.launch_latency;

  const auto emit = [&](std::vector<SimTask>& out, int host, int stream) {
    // Coarse chain first in the serial schedule (mirrors eq. 3's ordering).
    out.push_back({"restrict", host, stream, transfer, 0});
    out.push_back({"coarse-gs", host, stream, coarse_kernel / 4, coarse_halo});
    for (int it = 0; it < coarse_iterations; ++it) {
      out.push_back({"coarse-ax", host, stream, coarse_kernel, 0});
      out.push_back({"coarse-gs", host, stream, coarse_kernel / 4, coarse_halo});
      out.push_back({"coarse-dot1", host, stream, coarse_kernel / 3, reduce});
      out.push_back({"coarse-axpy", host, stream, coarse_kernel / 2, 0});
      out.push_back({"coarse-dot2", host, stream, coarse_kernel / 3, reduce});
    }
    out.push_back({"prolong", host, stream, transfer, 0});
  };
  const auto emit_fine = [&](std::vector<SimTask>& out, int host, int stream) {
    out.push_back({"fdm-forward", host, stream, fdm_chunk, 0});
    out.push_back({"fdm-diag", host, stream, fdm_chunk / 3, 0});
    out.push_back({"fdm-backward", host, stream, fdm_chunk, 0});
    out.push_back({"gs-pack", host, stream, pack, 0});
    out.push_back({"gs-halo", host, stream, 0, halo_wait});
    out.push_back({"gs-scatter", host, stream, pack, 0});
    out.push_back({"weight", host, stream, weight, 0});
  };

  // Serial (timeline A): one host thread, one stream, coarse then fine.
  emit(sched.serial, 0, 0);
  emit_fine(sched.serial, 0, 0);

  // Task-parallel (timeline B): coarse chain on host thread 1 / stream 1
  // (high priority), fine smoother on host thread 0 / stream 0.
  emit(sched.parallel, 1, 1);
  emit_fine(sched.parallel, 0, 0);

  return sched;
}

}  // namespace felis::perfmodel
