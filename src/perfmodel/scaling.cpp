#include "perfmodel/scaling.hpp"

namespace felis::perfmodel {

StepPrediction predict_with_overlap(const Machine& machine,
                                    const ProductionMesh& mesh, int devices,
                                    const ScalingOptions& options) {
  const PartitionStats part = production_partition(mesh, devices);
  const StepWorkload load =
      estimate_step_workload(part, mesh.degree, options.counts);

  StepPrediction p;
  double pressure_rest = 0, pressure_coarse = 0;
  for (const auto& [name, phase] : load) {
    const double t = phase_time(machine, phase, devices);
    if (name == "pressure") {
      pressure_rest = t;
    } else if (name == "pressure_coarse") {
      pressure_coarse = t;
    } else {
      p.phase_seconds[name] = t;
      p.total += t;
    }
  }
  // §5.3: the task-parallel preconditioner runs the coarse solve (launch- and
  // latency-bound) concurrently with the fine smoother and the rest of the
  // pressure iteration's device work; serial execution pays the sum.
  const double pressure = options.overlap_coarse
                              ? std::max(pressure_rest, pressure_coarse)
                              : pressure_rest + pressure_coarse;
  p.phase_seconds["pressure"] = pressure;
  p.total += pressure;
  return p;
}

std::vector<ScalingPoint> predict_strong_scaling(
    const Machine& machine, const ProductionMesh& mesh,
    const std::vector<int>& device_counts, const ScalingOptions& options) {
  std::vector<ScalingPoint> points;
  points.reserve(device_counts.size());
  for (const int devices : device_counts) {
    const StepPrediction pred = predict_with_overlap(machine, mesh, devices, options);
    ScalingPoint pt;
    pt.devices = devices;
    pt.seconds_per_step = pred.total;
    pt.elements_per_device = mesh.total_elements() / devices;
    pt.phase_seconds = pred.phase_seconds;
    points.push_back(pt);
  }
  if (!points.empty()) {
    const double base_rate =
        points.front().seconds_per_step * points.front().devices;
    for (ScalingPoint& pt : points)
      pt.parallel_efficiency =
          base_rate / (pt.seconds_per_step * pt.devices);
  }
  return points;
}

}  // namespace felis::perfmodel
