#include "perfmodel/workload.hpp"

#include <cmath>

namespace felis::perfmodel {

namespace {

constexpr double kReal = sizeof(real_t);

/// Footprints of the individual kernels, per element, matching the
/// instrumentation formulas in operators/ops.cpp and precon/fdm.cpp.
struct KernelShapes {
  double n, npe, nd3;
  explicit KernelShapes(int degree) {
    n = degree + 1;
    npe = n * n * n;
    nd3 = std::pow((3 * (degree + 1) + 1) / 2, 3);
  }
  double ax_flops() const { return 12 * npe * n + 18 * npe; }
  double ax_bytes() const { return 9 * npe * kReal; }
  double grad_flops() const { return 6 * npe * n + 15 * npe; }
  double grad_bytes() const { return 13 * npe * kReal; }
  double divw_flops() const { return 6 * npe * n + 24 * npe; }
  double divw_bytes() const { return 14 * npe * kReal; }
  double fdm_flops() const { return 12 * npe * n; }
  double fdm_bytes() const { return 5 * npe * kReal; }
  double adv_set_flops() const { return 18 * nd3 * n + 18 * nd3; }
  double adv_set_bytes() const { return (3 * npe + 13 * nd3) * kReal; }
  double adv_apply_flops() const { return 12 * nd3 * n + 6 * nd3; }
  double adv_apply_bytes() const { return (2 * npe + 6 * nd3) * kReal; }
  /// Pointwise pass over `fields` field-sized arrays.
  double pw_bytes(double fields) const { return fields * npe * kReal; }
};

}  // namespace

StepWorkload estimate_step_workload(const PartitionStats& part, int degree,
                                    const SolverCounts& counts) {
  const KernelShapes k(degree);
  const double e = part.local_elements;

  // One fine gather-scatter: local gather/scatter passes + halo messages.
  const auto fine_gs = [&](PhaseCost& c) {
    c.bytes += 2 * e * k.npe * kReal;
    c.launches += 2;
    c.messages += part.neighbors;
    c.message_bytes += part.shared_nodes * kReal;
  };
  // One global dot product (weighted): 3 array reads + allreduce.
  const auto dot = [&](PhaseCost& c) {
    c.flops += 3 * e * k.npe;
    c.bytes += 3 * e * k.npe * kReal;
    c.launches += 1;
    c.reductions += 1;
  };

  StepWorkload load;

  // ---- forcing / explicit terms (the "other" slice of Fig. 4) ------------
  {
    PhaseCost c;
    // Dealiased advection: set_velocity + 4 applies (u, v, w, T).
    c.flops += e * (k.adv_set_flops() + 4 * k.adv_apply_flops());
    c.bytes += e * (k.adv_set_bytes() + 4 * k.adv_apply_bytes());
    c.launches += 4 + 4 * 13;
    // Weak→strong conversions: 4 gather-scatters + pointwise scaling.
    for (int i = 0; i < 4; ++i) fine_gs(c);
    c.bytes += e * k.pw_bytes(8);
    // ũ assembly (order-3 sums over 4 fields) and CFL + divergence checks.
    c.bytes += e * k.pw_bytes(4 * 7);
    c.flops += e * k.npe * 40;
    c.launches += 10;
    c.reductions += 2;  // CFL max + divergence norm
    load["other"] = c;
  }

  // ---- pressure: GMRES + hybrid Schwarz multigrid -------------------------
  {
    PhaseCost c;
    // RHS: div_weak + gs + mean removals.
    c.flops += e * k.divw_flops();
    c.bytes += e * k.divw_bytes();
    c.launches += 4;
    fine_gs(c);
    c.reductions += 2;
    const double ip = counts.pressure_iterations;
    // Per GMRES iteration: operator, preconditioner, orthogonalization.
    PhaseCost iter;
    // Operator: ax + gs.
    iter.flops += e * k.ax_flops();
    iter.bytes += e * k.ax_bytes();
    iter.launches += 4;
    fine_gs(iter);
    // Preconditioner, fine term: FDM + gs + weighting.
    iter.flops += e * k.fdm_flops();
    iter.bytes += e * k.fdm_bytes() + e * k.pw_bytes(2);
    iter.launches += 8;
    fine_gs(iter);
    // Preconditioner, coarse term: restrict, fixed-iteration PCG on the
    // vertex grid (8 dofs/element before assembly), prolong.
    iter.flops += e * (2 * 8 * k.n * 3);      // tensor transfers
    iter.bytes += e * (k.npe + 16) * kReal * 2;
    iter.launches += 6;
    // (The coarse-grid PCG itself is tracked as its own phase,
    // "pressure_coarse", so the overlap of §5.3 can be modelled — see
    // scaling.cpp.)
    // Batched classical Gram–Schmidt: the ~ip/2 basis dots stream 2 arrays
    // each but fuse into ONE reduction; plus the norm reduction.
    const double basis = ip / 2 + 1;
    iter.flops += basis * 3 * e * k.npe;
    iter.bytes += basis * e * k.pw_bytes(2)   // dots
                  + basis * e * k.pw_bytes(2);  // subtraction updates
    iter.launches += 2 * basis;
    iter.reductions += 2;
    c += iter.scaled(ip);
    // Residual-projection pre/post: ~basis_size dots + 1 operator apply.
    PhaseCost proj;
    for (int d = 0; d < 8; ++d) dot(proj);
    proj.flops += e * k.ax_flops();
    proj.bytes += e * k.ax_bytes() + e * k.pw_bytes(16);
    proj.launches += 12;
    fine_gs(proj);
    c += proj;
    load["pressure"] = c;

    // Coarse-grid solve: ~10 Jacobi-PCG iterations on the vertex grid per
    // GMRES iteration — tiny kernels (launch-latency bound) and two global
    // reductions per iteration (latency bound at scale). This is the part
    // the task-parallel preconditioner hides (§5.3, Fig. 2).
    PhaseCost coarse;
    const double ce_dofs = e * 8;
    coarse.flops += counts.coarse_iterations * ce_dofs * 60;
    coarse.bytes += counts.coarse_iterations * ce_dofs * 10 * kReal;
    coarse.launches += counts.coarse_iterations * 6.0;
    coarse.reductions += counts.coarse_iterations * 2.0 + 2;
    coarse.messages += (counts.coarse_iterations + 1) * part.neighbors;
    coarse.message_bytes +=
        (counts.coarse_iterations + 1) * part.coarse_shared_nodes * kReal;
    load["pressure_coarse"] = coarse.scaled(ip);
  }

  // ---- velocity: correction + 3 CG solves ---------------------------------
  {
    PhaseCost c;
    // ∇p + RHS assembly for 3 components + 3 gather-scatters.
    c.flops += e * k.grad_flops();
    c.bytes += e * k.grad_bytes() + e * k.pw_bytes(9);
    c.launches += 8;
    for (int i = 0; i < 3; ++i) fine_gs(c);
    PhaseCost iter;
    iter.flops += e * k.ax_flops();
    iter.bytes += e * k.ax_bytes() + e * k.pw_bytes(6);
    iter.launches += 8;
    fine_gs(iter);
    {
      PhaseCost dc;
      dot(dc);
      iter += dc.scaled(3);  // <p,Ap>, <r,z>, convergence norm
    }
    c += iter.scaled(counts.velocity_iterations);
    load["velocity"] = c;
  }

  // ---- temperature: 1 CG solve --------------------------------------------
  {
    PhaseCost c;
    c.bytes += e * k.pw_bytes(6);
    c.launches += 4;
    fine_gs(c);
    // Lifting: one extra operator apply.
    c.flops += e * k.ax_flops();
    c.bytes += e * k.ax_bytes();
    c.launches += 4;
    fine_gs(c);
    PhaseCost iter;
    iter.flops += e * k.ax_flops();
    iter.bytes += e * k.ax_bytes() + e * k.pw_bytes(6);
    iter.launches += 8;
    fine_gs(iter);
    {
      PhaseCost dc;
      dot(dc);
      iter += dc.scaled(3);
    }
    c += iter.scaled(counts.scalar_iterations);
    load["temperature"] = c;
  }

  return load;
}

double phase_time(const Machine& machine, const PhaseCost& phase, int ranks) {
  double t = 0;
  // Device execution (roofline) + launch overheads.
  t += machine.kernel_time(phase.flops, phase.bytes);
  t += phase.launches * machine.device.launch_latency;
  // Halo exchanges: per message latency + bandwidth (messages to distinct
  // neighbours leave in sequence from one NIC queue).
  t += phase.messages * machine.network.latency +
       phase.message_bytes / machine.network.bandwidth;
  if (phase.messages > 0) t += machine.network.gpu_sync_overhead;
  // Global reductions.
  t += phase.reductions * machine.allreduce_time(ranks, sizeof(real_t));
  return t;
}

StepPrediction predict_step(const Machine& machine, const StepWorkload& load,
                            int ranks) {
  StepPrediction p;
  for (const auto& [name, phase] : load) {
    const double t = phase_time(machine, phase, ranks);
    p.phase_seconds[name] = t;
    p.total += t;
  }
  return p;
}

}  // namespace felis::perfmodel
