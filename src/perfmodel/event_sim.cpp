#include "perfmodel/event_sim.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace felis::perfmodel {

SimResult simulate_streams(const std::vector<SimTask>& tasks,
                           double launch_latency) {
  std::map<int, double> host_time;    ///< next free time per host thread
  std::map<int, double> stream_time;  ///< completion of last task per stream
  SimResult result;
  int max_stream = 0;
  for (const SimTask& t : tasks) max_stream = std::max(max_stream, t.stream);
  result.device_busy.assign(static_cast<usize>(max_stream) + 1, 0.0);

  for (const SimTask& t : tasks) {
    FELIS_CHECK(t.stream >= 0 && t.host >= 0);
    double& host = host_time[t.host];
    double& stream = stream_time[t.stream];
    if (t.host_block > 0) {
      // Host-initiated communication: wait for the stream's prior kernels
      // (device data must be ready), then block the host.
      const double begin = std::max(host, stream);
      const double end = begin + t.host_block;
      result.trace.push_back({t.host + 2, t.name, begin, end});  // host rows
      host = end;
      // The dependent stream may not start subsequent work earlier.
      stream = std::max(stream, end);
    }
    if (t.device_seconds > 0) {
      // Asynchronous launch: host pays the launch latency only.
      const double submit = host + launch_latency;
      host = submit;
      const double begin = std::max(submit, stream);
      const double end = begin + t.device_seconds;
      result.trace.push_back({t.stream, t.name, begin, end});
      stream = end;
      result.device_busy[static_cast<usize>(t.stream)] += t.device_seconds;
    } else if (t.host_block <= 0) {
      // Pure host work (e.g. pack loop): occupy the host thread only.
      host += launch_latency;
    }
    result.makespan = std::max({result.makespan, host, stream});
  }
  return result;
}

}  // namespace felis::perfmodel
