/// \file precon_schedule.hpp
/// \brief Task DAG of the additive Schwarz preconditioner (serial and
/// task-parallel schedules) for the event simulator — Fig. 2's content.
#pragma once

#include "perfmodel/event_sim.hpp"
#include "perfmodel/workload.hpp"

namespace felis::perfmodel {

struct PreconSchedule {
  std::vector<SimTask> serial;    ///< timeline A of Fig. 2
  std::vector<SimTask> parallel;  ///< timeline B of Fig. 2
  double launch_latency = 0;
};

/// Build both schedules of ONE preconditioner application for a rank holding
/// `elements` elements at the given degree, on `machine`, with `ranks` peers
/// (sizes the reductions) — the "small test case representative of the
/// strong-scaling regime" of Fig. 2.
PreconSchedule build_precon_schedule(const Machine& machine, double elements,
                                     int degree, int coarse_iterations,
                                     int ranks, const PartitionStats& part);

}  // namespace felis::perfmodel
