/// \file solver.hpp
/// \brief Abstract operator / preconditioner interfaces and solver statistics.
///
/// Mirrors Neko's abstract-type design (§5.1): solvers are written against
/// `LinearOperator::apply` ("compute") and `Preconditioner::apply`, never
/// against concrete implementations, so tuned variants (e.g. the overlapped
/// Schwarz preconditioner) drop in without touching the solver stack.
#pragma once

#include <set>

#include "operators/ops.hpp"

namespace felis::krylov {

/// Fully assembled linear operator on continuous fields: implementations
/// compose the local matrix-free kernel, the gather–scatter and Dirichlet
/// masks.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  virtual void apply(const RealVec& u, RealVec& out) = 0;
};

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const RealVec& r, RealVec& z) = 0;
};

/// z = r (no preconditioning).
class IdentityPrecon final : public Preconditioner {
 public:
  void apply(const RealVec& r, RealVec& z) override { z = r; }
};

/// Block-Jacobi (assembled-diagonal) preconditioner — used for the velocity
/// and temperature solves in the paper (§6) and for the coarse grid.
class JacobiPrecon final : public Preconditioner {
 public:
  /// diag: assembled diagonal (from operators::diag_helmholtz or the coarse
  /// operator); entries must be nonzero. `backend`: dispatch for the
  /// pointwise scaling (null = process default).
  explicit JacobiPrecon(RealVec diag, device::Backend* backend = nullptr);
  void apply(const RealVec& r, RealVec& z) override;

 private:
  device::Backend& dev() const {
    return backend_ != nullptr ? *backend_ : device::default_backend();
  }

  RealVec inv_diag_;
  device::Backend* backend_ = nullptr;
};

struct SolveStats {
  int iterations = 0;
  real_t initial_residual = 0;
  real_t final_residual = 0;
  bool converged = false;
};

struct SolveControl {
  real_t abs_tol = 1e-9;
  real_t rel_tol = 0;      ///< 0 disables the relative criterion
  int max_iterations = 200;
};

/// Assembled Helmholtz operator h1·A + h2·B with Dirichlet masking: the
/// standard operator for pressure (h2=0), velocity and temperature solves.
class HelmholtzOperator final : public LinearOperator {
 public:
  /// `masked_dofs`: local dof offsets where the solution is prescribed
  /// (pass the gather-scattered closure — see make_mask below).
  HelmholtzOperator(const operators::Context& ctx, real_t h1, real_t h2,
                    std::vector<lidx_t> masked_dofs);

  void apply(const RealVec& u, RealVec& out) override;

  void set_coefficients(real_t h1, real_t h2) {
    h1_ = h1;
    h2_ = h2;
  }
  real_t h1() const { return h1_; }
  real_t h2() const { return h2_; }
  const std::vector<lidx_t>& masked_dofs() const { return masked_dofs_; }
  const operators::Context& context() const { return ctx_; }

 private:
  operators::Context ctx_;
  real_t h1_, h2_;
  std::vector<lidx_t> masked_dofs_;
};

/// Build the *closed* Dirichlet mask: local dofs on faces with the given
/// tags, extended via a gather-scatter-min exchange so nodes shared with
/// other elements/ranks are masked everywhere.
std::vector<lidx_t> make_mask(const operators::Context& ctx,
                              const std::set<mesh::FaceTag>& tags);

/// Zero a field at masked dofs.
void apply_mask(RealVec& f, const std::vector<lidx_t>& mask);

}  // namespace felis::krylov
