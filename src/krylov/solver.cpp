#include "krylov/solver.hpp"

#include "field/bc.hpp"

namespace felis::krylov {

JacobiPrecon::JacobiPrecon(RealVec diag, device::Backend* backend)
    : inv_diag_(std::move(diag)), backend_(backend) {
  for (real_t& v : inv_diag_) {
    FELIS_CHECK_MSG(v != 0.0, "JacobiPrecon: zero diagonal entry");
    v = 1.0 / v;
  }
}

void JacobiPrecon::apply(const RealVec& r, RealVec& z) {
  FELIS_CHECK(r.size() == inv_diag_.size());
  z.resize(r.size());
  dev().parallel_for_blocked(static_cast<lidx_t>(r.size()), /*grain=*/0,
                             [&](lidx_t begin, lidx_t end, int /*worker*/) {
                               for (lidx_t i = begin; i < end; ++i) {
                                 const usize u = static_cast<usize>(i);
                                 z[u] = r[u] * inv_diag_[u];
                               }
                             });
}

HelmholtzOperator::HelmholtzOperator(const operators::Context& ctx, real_t h1,
                                     real_t h2, std::vector<lidx_t> masked_dofs)
    : ctx_(ctx), h1_(h1), h2_(h2), masked_dofs_(std::move(masked_dofs)) {}

void HelmholtzOperator::apply(const RealVec& u, RealVec& out) {
  out.resize(u.size());
  operators::ax_helmholtz(ctx_, u, out, h1_, h2_);
  ctx_.gs->apply(out, gs::GsOp::kAdd, ctx_.prof);
  apply_mask(out, masked_dofs_);
}

std::vector<lidx_t> make_mask(const operators::Context& ctx,
                              const std::set<mesh::FaceTag>& tags) {
  RealVec indicator(ctx.num_dofs(), 1.0);
  const auto owned = field::boundary_dofs(*ctx.lmesh, *ctx.space, tags);
  field::set_at(indicator, owned, 0.0);
  ctx.gs->apply(indicator, gs::GsOp::kMin);
  std::vector<lidx_t> mask;
  for (usize i = 0; i < indicator.size(); ++i)
    if (indicator[i] == 0.0) mask.push_back(static_cast<lidx_t>(i));
  return mask;
}

void apply_mask(RealVec& f, const std::vector<lidx_t>& mask) {
  for (const lidx_t d : mask) f[static_cast<usize>(d)] = 0.0;
}

}  // namespace felis::krylov
