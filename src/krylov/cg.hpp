/// \file cg.hpp
/// \brief Preconditioned conjugate gradients.
///
/// The paper's velocity and temperature solves use "a block-Jacobi
/// preconditioner and conjugate gradient iterative solver" (§6); the coarse
/// grid of the pressure preconditioner uses a fixed-iteration PCG (§5.3).
/// Inner products are globally reduced with inverse-multiplicity weights so
/// duplicated dofs count once.
#pragma once

#include "krylov/solver.hpp"

namespace felis::krylov {

class CgSolver {
 public:
  explicit CgSolver(const operators::Context& ctx) : ctx_(ctx) {}

  /// Solve A x = b starting from the given x (which must satisfy homogeneous
  /// values at masked dofs). b must be assembled (gather–scattered) and
  /// masked. If `control.max_iterations` is reached the stats report
  /// converged=false (callers using CG as a fixed-iteration smoother, like
  /// the coarse-grid solve, simply ignore the flag).
  SolveStats solve(LinearOperator& op, Preconditioner& precon, const RealVec& b,
                   RealVec& x, const SolveControl& control) const;

 private:
  SolveStats solve_impl(LinearOperator& op, Preconditioner& precon,
                        const RealVec& b, RealVec& x,
                        const SolveControl& control) const;

  operators::Context ctx_;
};

}  // namespace felis::krylov
