/// \file projection.hpp
/// \brief Residual-projection initial guesses (Fischer-type) for sequences of
/// related solves.
///
/// Fig. 4 of the paper counts "generating right-hand sides, initial guesses
/// and solving the equations" in each solve phase; Neko accelerates the
/// pressure solve by projecting the new right-hand side onto the span of
/// previous solutions (A-conjugate basis), solving only for the correction.
/// This routinely removes 30–70% of Krylov iterations in smooth flows.
#pragma once

#include "krylov/solver.hpp"

namespace felis::krylov {

class ResidualProjection {
 public:
  /// `max_vectors`: size of the stored A-orthonormal history (restarted and
  /// reseeded with the newest solution when full). Set `singular_operator`
  /// when A has the constant null space (the all-Neumann pressure Poisson
  /// problem): constants are then stripped from candidate basis vectors —
  /// the A-norm cannot see them, and normalizing a vector whose energy norm
  /// is tiny but whose constant part is not would blow the basis up.
  ResidualProjection(const operators::Context& ctx, usize max_vectors = 8,
                     bool singular_operator = false)
      : ctx_(ctx),
        max_vectors_(max_vectors),
        singular_operator_(singular_operator) {}

  /// Project b onto the stored basis: returns the initial guess x0 in `x0`
  /// and replaces b by the deflated right-hand side b − A·x0.
  void pre_solve(RealVec& b, RealVec& x0);

  /// After solving A·dx = deflated b, pass dx here: forms x = x0 + dx
  /// (returned in `x`), and extends the basis with the A-orthonormalized dx.
  /// One extra operator application is used to compute A·dx exactly.
  void post_solve(LinearOperator& op, const RealVec& x0, const RealVec& dx,
                  RealVec& x);

  usize basis_size() const { return basis_.size(); }
  void clear() {
    basis_.clear();
    a_basis_.clear();
  }

  /// Checkpoint access: the basis is *state*, not a pure cache — without it
  /// a restarted run computes different initial guesses (hence different
  /// Krylov iterates) than the uninterrupted one, breaking bitwise restart.
  const std::vector<RealVec>& basis() const { return basis_; }
  const std::vector<RealVec>& a_basis() const { return a_basis_; }

  /// Install a basis captured by basis()/a_basis() on a compatible context
  /// (same dof count). Vectors beyond max_vectors are dropped from the
  /// front, matching what the live accumulation would have retained.
  void set_state(std::vector<RealVec> basis, std::vector<RealVec> a_basis);

 private:
  operators::Context ctx_;
  usize max_vectors_;
  bool singular_operator_;
  std::vector<RealVec> basis_;    ///< x_i with <x_i, A x_j> = δ_ij
  std::vector<RealVec> a_basis_;  ///< A x_i
};

}  // namespace felis::krylov
