#include "krylov/gmres.hpp"

#include <cmath>

#include "telemetry/telemetry.hpp"

namespace felis::krylov {

SolveStats GmresSolver::solve(LinearOperator& op, Preconditioner& precon,
                              const RealVec& b, RealVec& x,
                              const SolveControl& control,
                              bool null_space_mean) const {
  const SolveStats stats =
      solve_impl(op, precon, b, x, control, null_space_mean);
  telemetry::charge_counter("krylov.gmres_solves");
  telemetry::charge_counter("krylov.gmres_iterations", stats.iterations);
  return stats;
}

SolveStats GmresSolver::solve_impl(LinearOperator& op, Preconditioner& precon,
                                   const RealVec& b, RealVec& x,
                                   const SolveControl& control,
                                   bool null_space_mean) const {
  const usize nd = ctx_.num_dofs();
  FELIS_CHECK(b.size() == nd && x.size() == nd);
  const int m = restart_;
  SolveStats stats;

  RealVec b_eff = b;
  if (null_space_mean) {
    // Project the RHS onto range(A) (constants are null): without this the
    // iteration diverges along the constant vector.
    operators::remove_null_component(ctx_, b_eff);
    operators::remove_mean(ctx_, x);
  }

  // Krylov basis (m+1 vectors) and Hessenberg in Givens-rotated form.
  std::vector<RealVec> v(static_cast<usize>(m) + 1, RealVec(nd));
  std::vector<RealVec> z(static_cast<usize>(m), RealVec(nd));
  std::vector<RealVec> h(static_cast<usize>(m),
                         RealVec(static_cast<usize>(m) + 1, 0.0));
  RealVec cs(static_cast<usize>(m), 0.0), sn(static_cast<usize>(m), 0.0),
      gamma(static_cast<usize>(m) + 1, 0.0);
  RealVec w(nd);
  device::Backend& dev = ctx_.dev();

  real_t target = -1;
  for (int outer = 0; outer * m < control.max_iterations || outer == 0; ++outer) {
    // r = b - A x.
    op.apply(x, w);
    operators::vec_sub(dev, b_eff, w, v[0]);
    if (null_space_mean) operators::remove_null_component(ctx_, v[0]);
    const real_t beta = std::sqrt(operators::gdot(ctx_, v[0], v[0]));
    if (outer == 0) {
      stats.initial_residual = beta;
      target = std::max(control.abs_tol,
                        control.rel_tol > 0 ? control.rel_tol * beta : real_t(0));
    }
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      return stats;
    }
    const real_t inv_beta = 1.0 / beta;
    operators::vec_scale(dev, inv_beta, v[0]);
    gamma[0] = beta;
    std::fill(gamma.begin() + 1, gamma.end(), 0.0);

    int k = 0;
    bool happy = false;    ///< breakdown with exact solution in the space
    bool stalled = false;  ///< degenerate breakdown with no progress possible
    for (; k < m && stats.iterations < control.max_iterations; ++k) {
      // w = A M⁻¹ v_k  (right preconditioning).
      precon.apply(v[static_cast<usize>(k)], z[static_cast<usize>(k)]);
      op.apply(z[static_cast<usize>(k)], w);
      if (null_space_mean) operators::remove_null_component(ctx_, w);
      if (batched_orthogonalization_) {
        // Classical Gram–Schmidt: all k+1 basis dots in ONE reduction.
        const RealVec& weight = ctx_.gs->inverse_multiplicity();
        RealVec dots(static_cast<usize>(k) + 1, 0.0);
        for (int j = 0; j <= k; ++j) {
          const RealVec& vj = v[static_cast<usize>(j)];
          dots[static_cast<usize>(j)] =
              dev.reduce_sum(static_cast<lidx_t>(nd), [&](lidx_t begin,
                                                          lidx_t end) {
                real_t s = 0;
                for (lidx_t i = begin; i < end; ++i) {
                  const usize u = static_cast<usize>(i);
                  s += w[u] * vj[u] * weight[u];
                }
                return s;
              });
        }
        ctx_.comm->allreduce(dots.data(), dots.size(), comm::ReduceOp::kSum);
        if (ctx_.prof) ctx_.prof->add_reduction();
        for (int j = 0; j <= k; ++j) {
          h[static_cast<usize>(k)][static_cast<usize>(j)] = dots[static_cast<usize>(j)];
          operators::vec_axpy(dev, -dots[static_cast<usize>(j)],
                              v[static_cast<usize>(j)], w);
        }
      } else {
        // Modified Gram–Schmidt (one reduction per basis vector).
        for (int j = 0; j <= k; ++j) {
          const real_t hjk = operators::gdot(ctx_, w, v[static_cast<usize>(j)]);
          h[static_cast<usize>(k)][static_cast<usize>(j)] = hjk;
          operators::vec_axpy(dev, -hjk, v[static_cast<usize>(j)], w);
        }
      }
      const real_t hk1 = std::sqrt(operators::gdot(ctx_, w, w));
      h[static_cast<usize>(k)][static_cast<usize>(k) + 1] = hk1;
      if (hk1 > 0) {
        operators::vec_scaled(dev, 1.0 / hk1, w, v[static_cast<usize>(k) + 1]);
      }
      // Apply previous Givens rotations to the new column.
      for (int j = 0; j < k; ++j) {
        const real_t t = cs[static_cast<usize>(j)] * h[static_cast<usize>(k)][static_cast<usize>(j)] +
                         sn[static_cast<usize>(j)] * h[static_cast<usize>(k)][static_cast<usize>(j) + 1];
        h[static_cast<usize>(k)][static_cast<usize>(j) + 1] =
            -sn[static_cast<usize>(j)] * h[static_cast<usize>(k)][static_cast<usize>(j)] +
            cs[static_cast<usize>(j)] * h[static_cast<usize>(k)][static_cast<usize>(j) + 1];
        h[static_cast<usize>(k)][static_cast<usize>(j)] = t;
      }
      // New rotation annihilating h(k+1,k).
      const real_t a = h[static_cast<usize>(k)][static_cast<usize>(k)];
      const real_t bb = h[static_cast<usize>(k)][static_cast<usize>(k) + 1];
      const real_t rho = std::hypot(a, bb);
      if (rho == 0) {
        // Degenerate breakdown: the rotated column vanished entirely, so
        // A·z_k added no information (only reachable for a singular
        // operator). The first k columns already hold the least-squares
        // optimum — back-substitute those; with k == 0 no progress is
        // possible at all and the solve must return instead of spinning.
        stalled = (k == 0);
        break;
      }
      cs[static_cast<usize>(k)] = a / rho;
      sn[static_cast<usize>(k)] = bb / rho;
      h[static_cast<usize>(k)][static_cast<usize>(k)] = rho;
      h[static_cast<usize>(k)][static_cast<usize>(k) + 1] = 0.0;
      gamma[static_cast<usize>(k) + 1] = -sn[static_cast<usize>(k)] * gamma[static_cast<usize>(k)];
      gamma[static_cast<usize>(k)] = cs[static_cast<usize>(k)] * gamma[static_cast<usize>(k)];
      ++stats.iterations;
      stats.final_residual = std::abs(gamma[static_cast<usize>(k) + 1]);
      if (hk1 == 0) {
        // Happy breakdown: A M⁻¹ v_k ∈ span{v_0..v_k}, so the small
        // least-squares residual is exactly zero and the true solution lies
        // in the current space (v[k+1] was never formed — w is zero).
        // Back-substitute the k+1 columns and return converged.
        stats.final_residual = 0.0;
        happy = true;
        ++k;
        break;
      }
      if (stats.final_residual <= target) {
        ++k;
        break;
      }
    }
    // Back-substitute y and update x += Σ y_j z_j.
    RealVec y(static_cast<usize>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      real_t s = gamma[static_cast<usize>(i)];
      for (int j = i + 1; j < k; ++j)
        s -= h[static_cast<usize>(j)][static_cast<usize>(i)] * y[static_cast<usize>(j)];
      y[static_cast<usize>(i)] = s / h[static_cast<usize>(i)][static_cast<usize>(i)];
    }
    for (int j = 0; j < k; ++j)
      operators::vec_axpy(dev, y[static_cast<usize>(j)],
                          z[static_cast<usize>(j)], x);
    if (null_space_mean) operators::remove_mean(ctx_, x);
    if (happy || stats.final_residual <= target) {
      stats.converged = true;
      return stats;
    }
    if (stalled || stats.iterations >= control.max_iterations) return stats;
  }
  return stats;
}

}  // namespace felis::krylov
