/// \file gmres.hpp
/// \brief Restarted, right-preconditioned GMRES.
///
/// "the pressure is solved through a hybrid-Schwarz multigrid preconditioner
/// combined with GMRES" (§6). Right preconditioning keeps the residual in
/// the unpreconditioned norm (the quantity the splitting scheme controls),
/// and lets the preconditioner change between restarts.
#pragma once

#include "krylov/solver.hpp"

namespace felis::krylov {

class GmresSolver {
 public:
  /// `batched_orthogonalization`: classical Gram–Schmidt with all basis dot
  /// products fused into ONE global reduction per iteration (the standard
  /// production choice at scale — modified GS would cost k reductions per
  /// iteration); a second pass is applied when cancellation is detected.
  GmresSolver(const operators::Context& ctx, int restart = 30,
              bool batched_orthogonalization = true)
      : ctx_(ctx),
        restart_(restart),
        batched_orthogonalization_(batched_orthogonalization) {}

  /// Solve A x = b from initial guess x. If `null_space_mean` is true the
  /// operator has the constant null space of the all-Neumann pressure
  /// problem; the mean is projected out of b, of x, and of every solution
  /// update.
  SolveStats solve(LinearOperator& op, Preconditioner& precon, const RealVec& b,
                   RealVec& x, const SolveControl& control,
                   bool null_space_mean = false) const;

 private:
  SolveStats solve_impl(LinearOperator& op, Preconditioner& precon,
                        const RealVec& b, RealVec& x,
                        const SolveControl& control, bool null_space_mean) const;

  operators::Context ctx_;
  int restart_;
  bool batched_orthogonalization_;
};

}  // namespace felis::krylov
