#include "krylov/projection.hpp"

#include <cmath>

namespace felis::krylov {

void ResidualProjection::set_state(std::vector<RealVec> basis,
                                   std::vector<RealVec> a_basis) {
  FELIS_CHECK_MSG(basis.size() == a_basis.size(),
                  "ResidualProjection::set_state: basis/a_basis size mismatch");
  const usize nd = ctx_.num_dofs();
  for (const auto* vecs : {&basis, &a_basis})
    for (const RealVec& v : *vecs)
      FELIS_CHECK_MSG(v.size() == nd,
                      "ResidualProjection::set_state: basis vector length "
                          << v.size() << " does not match " << nd << " dofs");
  basis_ = std::move(basis);
  a_basis_ = std::move(a_basis);
  while (basis_.size() > max_vectors_) {
    basis_.erase(basis_.begin());
    a_basis_.erase(a_basis_.begin());
  }
}

void ResidualProjection::pre_solve(RealVec& b, RealVec& x0) {
  const usize nd = ctx_.num_dofs();
  device::Backend& dev = ctx_.dev();
  x0.assign(nd, 0.0);
  for (usize k = 0; k < basis_.size(); ++k) {
    // A-orthonormal basis: alpha_k = <x_k, b> gives the A-norm-optimal
    // combination since <x_i, A x_j> = δ_ij.
    const real_t alpha = operators::gdot(ctx_, basis_[k], b);
    operators::vec_axpy(dev, alpha, basis_[k], x0);
    operators::vec_axpy(dev, -alpha, a_basis_[k], b);
  }
}

void ResidualProjection::post_solve(LinearOperator& op, const RealVec& x0,
                                    const RealVec& dx, RealVec& x) {
  const usize nd = ctx_.num_dofs();
  device::Backend& dev = ctx_.dev();
  x.resize(nd);
  operators::vec_copy(dev, x0, x);
  operators::vec_add(dev, dx, x);

  if (max_vectors_ == 0) return;
  if (basis_.size() >= max_vectors_) {
    // Restart: keep the space warm by reseeding with the full solution.
    basis_.clear();
    a_basis_.clear();
  }
  RealVec v = dx;
  if (singular_operator_) operators::remove_null_component(ctx_, v);
  RealVec av(nd);
  op.apply(v, av);
  // A-orthonormalize against the current basis (one Gram–Schmidt pass is
  // enough at these basis sizes).
  for (usize k = 0; k < basis_.size(); ++k) {
    const real_t beta = operators::gdot(ctx_, basis_[k], av);
    operators::vec_axpy(dev, -beta, basis_[k], v);
    operators::vec_axpy(dev, -beta, a_basis_[k], av);
  }
  const real_t norm2 = operators::gdot(ctx_, v, av);
  // Reject directions that are (numerically) A-null or linearly dependent:
  // normalizing them would amplify roundoff into the basis.
  const real_t vv = operators::gdot(ctx_, v, v);
  if (norm2 <= 0 || !std::isfinite(norm2) || norm2 <= 1e-24 * vv) return;
  const real_t inv = 1.0 / std::sqrt(norm2);
  operators::vec_scale(dev, inv, v);
  operators::vec_scale(dev, inv, av);
  basis_.push_back(std::move(v));
  a_basis_.push_back(std::move(av));
}

}  // namespace felis::krylov
