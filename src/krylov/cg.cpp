#include "krylov/cg.hpp"

#include <cmath>

#include "telemetry/telemetry.hpp"

namespace felis::krylov {

SolveStats CgSolver::solve(LinearOperator& op, Preconditioner& precon,
                           const RealVec& b, RealVec& x,
                           const SolveControl& control) const {
  const SolveStats stats = solve_impl(op, precon, b, x, control);
  telemetry::charge_counter("krylov.cg_solves");
  telemetry::charge_counter("krylov.cg_iterations", stats.iterations);
  return stats;
}

SolveStats CgSolver::solve_impl(LinearOperator& op, Preconditioner& precon,
                                const RealVec& b, RealVec& x,
                                const SolveControl& control) const {
  const usize nd = ctx_.num_dofs();
  FELIS_CHECK(b.size() == nd && x.size() == nd);
  SolveStats stats;

  device::Backend& dev = ctx_.dev();
  RealVec r(nd), z(nd), p(nd), w(nd);
  op.apply(x, w);
  operators::vec_sub(dev, b, w, r);

  stats.initial_residual = std::sqrt(operators::gdot(ctx_, r, r));
  stats.final_residual = stats.initial_residual;
  const real_t target = std::max(
      control.abs_tol, control.rel_tol > 0 ? control.rel_tol * stats.initial_residual
                                           : real_t(0));
  if (stats.initial_residual <= target) {
    stats.converged = true;
    return stats;
  }

  precon.apply(r, z);
  p = z;
  real_t rz = operators::gdot(ctx_, r, z);

  for (int it = 0; it < control.max_iterations; ++it) {
    op.apply(p, w);
    const real_t pw = operators::gdot(ctx_, p, w);
    if (pw == 0.0) {
      // p = 0 ⇒ the (preconditioned) residual is exactly zero: converged.
      stats.converged = true;
      return stats;
    }
    const real_t alpha = rz / pw;
    operators::vec_axpy(dev, alpha, p, x);
    operators::vec_axpy(dev, -alpha, w, r);
    stats.iterations = it + 1;
    stats.final_residual = std::sqrt(operators::gdot(ctx_, r, r));
    if (stats.final_residual <= target) {
      stats.converged = true;
      return stats;
    }
    precon.apply(r, z);
    const real_t rz_new = operators::gdot(ctx_, r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    operators::vec_xpay(dev, z, beta, p);
  }
  return stats;
}

}  // namespace felis::krylov
