#include "common/params.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"

namespace felis {

namespace {
std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  auto end = s.find_last_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  return s.substr(begin, end - begin + 1);
}
}  // namespace

ParamMap ParamMap::parse(const std::string& text) {
  ParamMap params;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // ';' separates statements within a line, so one-line configs
    // ("mode=corrupt; at=2") parse the same as multi-line files.
    std::istringstream statements(line);
    std::string stmt;
    while (std::getline(statements, stmt, ';')) {
      stmt = trim(stmt);
      if (stmt.empty()) continue;
      const auto eq = stmt.find('=');
      FELIS_CHECK_MSG(eq != std::string::npos,
                      "ParamMap::parse: missing '=' on line " << lineno);
      const std::string key = trim(stmt.substr(0, eq));
      const std::string value = trim(stmt.substr(eq + 1));
      FELIS_CHECK_MSG(!key.empty(),
                      "ParamMap::parse: empty key on line " << lineno);
      params.set(key, value);
    }
  }
  return params;
}

void ParamMap::set(const std::string& key, const std::string& value) {
  map_[key] = value;
}
void ParamMap::set(const std::string& key, real_t value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  map_[key] = os.str();
}
void ParamMap::set(const std::string& key, int value) {
  map_[key] = std::to_string(value);
}
void ParamMap::set(const std::string& key, bool value) {
  map_[key] = value ? "true" : "false";
}

bool ParamMap::has(const std::string& key) const { return map_.count(key) > 0; }

std::optional<std::string> ParamMap::lookup(const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::string ParamMap::get_string(const std::string& key) const {
  const auto v = lookup(key);
  FELIS_CHECK_MSG(v.has_value(), "missing parameter '" << key << "'");
  return *v;
}

real_t ParamMap::get_real(const std::string& key) const {
  const std::string s = get_string(key);
  try {
    usize pos = 0;
    const real_t v = std::stod(s, &pos);
    FELIS_CHECK_MSG(pos == s.size(), "trailing junk in real parameter '" << key << "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("parameter '" + key + "' is not a real number: " + s);
  }
}

int ParamMap::get_int(const std::string& key) const {
  const std::string s = get_string(key);
  try {
    usize pos = 0;
    const int v = std::stoi(s, &pos);
    FELIS_CHECK_MSG(pos == s.size(), "trailing junk in int parameter '" << key << "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("parameter '" + key + "' is not an integer: " + s);
  }
}

bool ParamMap::get_bool(const std::string& key) const {
  std::string s = get_string(key);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw Error("parameter '" + key + "' is not a boolean: " + s);
}

std::string ParamMap::get_string(const std::string& key, const std::string& def) const {
  return has(key) ? get_string(key) : def;
}
real_t ParamMap::get_real(const std::string& key, real_t def) const {
  return has(key) ? get_real(key) : def;
}
int ParamMap::get_int(const std::string& key, int def) const {
  return has(key) ? get_int(key) : def;
}
bool ParamMap::get_bool(const std::string& key, bool def) const {
  return has(key) ? get_bool(key) : def;
}

}  // namespace felis
