/// \file types.hpp
/// \brief Fundamental scalar and index types used throughout felis.
///
/// The paper's runs use double precision exclusively ("only double precision
/// floating point numbers were used throughout", SC'23 §6); `real_t` is
/// therefore `double` and there is no single-precision build flavour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace felis {

/// Floating-point type for all field data and operators (double precision).
using real_t = double;

/// Local index type (within one rank): element ids, node ids, offsets.
using lidx_t = std::int32_t;

/// Global index type: unique global node / element numbers across all ranks.
using gidx_t = std::int64_t;

/// Size type for buffer lengths.
using usize = std::size_t;

/// Contiguous array of reals; the workhorse container for field storage.
using RealVec = std::vector<real_t>;

/// Number of space dimensions; felis meshes are always 3-D hexahedral
/// (2-D problems are run as one-element-thick periodic slabs).
inline constexpr int kDim = 3;

}  // namespace felis
