/// \file stats.hpp
/// \brief Sample statistics used by the measurement protocol of §6.1:
/// time-per-step averages over repeated steps with transient removal, and
/// 99% confidence intervals as plotted in Fig. 3.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace felis {

/// Accumulates scalar samples and reports mean / stddev / confidence bounds.
class SampleStats {
 public:
  void add(real_t x) {
    // Welford's online algorithm: numerically stable single-pass moments.
    ++n_;
    const real_t delta = x - mean_;
    mean_ += delta / static_cast<real_t>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::int64_t count() const { return n_; }
  real_t mean() const { return mean_; }
  real_t min() const { return min_; }
  real_t max() const { return max_; }

  real_t variance() const {
    return n_ > 1 ? m2_ / static_cast<real_t>(n_ - 1) : 0.0;
  }
  real_t stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  real_t sem() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<real_t>(n_)) : 0.0;
  }

  /// Half-width of the 99% confidence interval for the mean (normal
  /// approximation, z = 2.5758; the paper's samples are 250 steps, where the
  /// Student-t correction is negligible).
  real_t ci99_halfwidth() const { return 2.5758293035489004 * sem(); }

 private:
  std::int64_t n_ = 0;
  real_t mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Least-squares fit of log(y) = a + b log(x); returns the exponent b and
/// prefactor exp(a). Used for Nu ~ Ra^beta scaling fits.
struct PowerFit {
  real_t prefactor = 0;
  real_t exponent = 0;
};

inline PowerFit fit_power_law(const std::vector<real_t>& x,
                              const std::vector<real_t>& y) {
  FELIS_CHECK(x.size() == y.size() && x.size() >= 2);
  real_t sx = 0, sy = 0, sxx = 0, sxy = 0;
  const real_t n = static_cast<real_t>(x.size());
  for (usize i = 0; i < x.size(); ++i) {
    FELIS_CHECK_MSG(x[i] > 0 && y[i] > 0, "power-law fit requires positive data");
    const real_t lx = std::log(x[i]);
    const real_t ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  fit.prefactor = std::exp((sy - fit.exponent * sx) / n);
  return fit;
}

}  // namespace felis
