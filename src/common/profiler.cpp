#include "common/profiler.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace felis {

RegionNode* RegionNode::child(const std::string& child_name) {
  auto& slot = children[child_name];
  if (!slot) {
    slot = std::make_unique<RegionNode>();
    slot->name = child_name;
  }
  return slot.get();
}

OpCounters RegionNode::inclusive_counters() const {
  OpCounters total = counters;
  for (const auto& [_, c] : children) total += c->inclusive_counters();
  return total;
}

double RegionNode::child_seconds() const {
  double s = 0;
  for (const auto& [_, c] : children) s += c->seconds;
  return s;
}

Profiler::Profiler() {
  root_.name = "total";
  current_ = &root_;
}

void Profiler::push(const std::string& name) {
  RegionNode* node = current_->child(name);
  Frame frame{node, timing_enabled_ ? Clock::now() : Clock::time_point{}, {}};
  if (timeline_enabled_) {
    frame.path = stack_.empty() ? name : stack_.back().path + "/" + name;
  }
  stack_.push_back(std::move(frame));
  current_ = node;
}

void Profiler::pop() {
  FELIS_CHECK_MSG(!stack_.empty(), "Profiler::pop with empty region stack");
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  frame.node->calls += 1;
  if (timing_enabled_) {
    const Clock::time_point end = Clock::now();
    frame.node->seconds +=
        std::chrono::duration<double>(end - frame.start).count();
    if (timeline_enabled_) {
      if (timeline_.size() < timeline_max_events_) {
        timeline_.push_back(
            {std::move(frame.path), static_cast<int>(stack_.size()) + 1,
             std::chrono::duration<double>(frame.start - timeline_epoch_).count(),
             std::chrono::duration<double>(end - timeline_epoch_).count()});
      } else {
        ++timeline_dropped_;
      }
    }
  }
  current_ = stack_.empty() ? &root_ : stack_.back().node;
}

void Profiler::enable_timeline(std::chrono::steady_clock::time_point epoch,
                               usize max_events) {
  timeline_enabled_ = true;
  timeline_epoch_ = epoch;
  timeline_max_events_ = max_events;
  timeline_dropped_ = 0;
  timeline_.clear();
}

namespace {
void reset_node(RegionNode& node) {
  node.seconds = 0;
  node.calls = 0;
  node.counters = OpCounters{};
  for (auto& [_, c] : node.children) reset_node(*c);
}

const RegionNode* find_node(const RegionNode& node, const std::string& path) {
  if (path.empty()) return &node;
  const auto slash = path.find('/');
  const std::string head = path.substr(0, slash);
  const auto it = node.children.find(head);
  if (it == node.children.end()) return nullptr;
  if (slash == std::string::npos) return it->second.get();
  return find_node(*it->second, path.substr(slash + 1));
}

void report_node(const RegionNode& node, double parent_seconds, int depth,
                 std::ostringstream& os) {
  const OpCounters inc = node.inclusive_counters();
  os << std::string(static_cast<usize>(2 * depth), ' ') << node.name << ": "
     << std::fixed << std::setprecision(6) << node.seconds << " s";
  if (parent_seconds > 0) {
    os << " (" << std::setprecision(1) << 100.0 * node.seconds / parent_seconds
       << "%)";
  }
  os << "  calls=" << node.calls;
  if (inc.flops > 0) os << "  Gflop=" << std::setprecision(3) << inc.flops / 1e9;
  if (inc.bytes > 0) os << "  GB=" << std::setprecision(3) << inc.bytes / 1e9;
  if (inc.messages > 0) {
    os << "  msgs=" << std::setprecision(0) << inc.messages << "  msgMB="
       << std::setprecision(3) << inc.msg_bytes / 1e6;
  }
  if (inc.reductions > 0)
    os << "  reductions=" << std::setprecision(0) << inc.reductions;
  os << '\n';
  for (const auto& [_, c] : node.children)
    report_node(*c, node.seconds, depth + 1, os);
}
}  // namespace

void Profiler::reset() {
  FELIS_CHECK_MSG(stack_.empty(), "Profiler::reset inside an open region");
  reset_node(root_);
}

const RegionNode* Profiler::find(const std::string& path) const {
  return find_node(root_, path);
}

std::string Profiler::report() const {
  std::ostringstream os;
  double top_seconds = 0;
  for (const auto& [_, c] : root_.children) top_seconds += c->seconds;
  for (const auto& [_, c] : root_.children) report_node(*c, top_seconds, 0, os);
  return os.str();
}

ScopedRegion::ScopedRegion(Profiler& prof, const std::string& name) : prof_(prof) {
  prof_.push(name);
}

ScopedRegion::~ScopedRegion() { prof_.pop(); }

}  // namespace felis
