#include "common/logger.hpp"

#include <iostream>

namespace felis {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(this->level())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << prefix_ << msg << '\n';
  // felis-lint: the logger is the one sanctioned stdout writer.
  std::cout << os.str() << std::flush;
}

void Logger::section(const std::string& title) {
  log(LogLevel::kInfo, "=== " + title + " ===");
}

}  // namespace felis
