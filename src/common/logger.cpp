#include "common/logger.hpp"

namespace felis {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(level_)) return;
  std::ostringstream os;
  os << prefix_ << msg << '\n';
  std::cout << os.str() << std::flush;
}

void Logger::section(const std::string& title) {
  log(LogLevel::kInfo, "=== " + title + " ===");
}

}  // namespace felis
