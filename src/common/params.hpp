/// \file params.hpp
/// \brief Flat key–value parameter map (a deliberately small stand-in for
/// Neko's JSON case files).
///
/// Keys are dotted paths ("case.fluid.Ra"); values are stored as strings and
/// converted on access. Parsing accepts simple `key = value` statements
/// separated by newlines or ';' (so single-line configs like the
/// FELIS_FAULT_INJECT environment variable parse too) with `#` comments,
/// enough to express every example/bench case in this repo.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace felis {

class ParamMap {
 public:
  ParamMap() = default;

  /// Parse `key = value` statements separated by newlines or ';'; '#' starts
  /// a comment (to end of line); blank statements ignored.
  static ParamMap parse(const std::string& text);

  void set(const std::string& key, const std::string& value);
  /// String-literal overload: without it, `set(key, "rbc")` would silently
  /// pick the bool overload (pointer → bool beats pointer → std::string).
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  void set(const std::string& key, real_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed getters; throw felis::Error if the key is missing or malformed.
  std::string get_string(const std::string& key) const;
  real_t get_real(const std::string& key) const;
  int get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Getters with defaults.
  std::string get_string(const std::string& key, const std::string& def) const;
  real_t get_real(const std::string& key, real_t def) const;
  int get_int(const std::string& key, int def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  std::optional<std::string> lookup(const std::string& key) const;
  std::map<std::string, std::string> map_;
};

}  // namespace felis
