/// \file profiler.hpp
/// \brief Hierarchical region timing and operation counting.
///
/// Reproduces the paper's measurement protocol (§6): wall-clock timers around
/// named code regions, arranged in a tree ("step/pressure/precon/coarse"),
/// with per-region call counts. In addition to time, each region accumulates
/// *operation counters* (flops, bytes moved, messages, message bytes); these
/// exact counts are the inputs to the perfmodel that regenerates the paper's
/// extreme-scale Figs. 3 and 4.
///
/// A `Profiler` instance is owned by one solver instance (one simulated rank).
/// The region stack (push/pop/scope), reset() and report() are used from that
/// rank's thread only; the counter-charging calls (add_flops/add_bytes/...)
/// are atomic so kernels dispatched onto a device backend, or a solve shared
/// between overlapped threads, may charge the current region concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace felis {

/// Accumulated operation counts for one region (exclusive of children for
/// counters added directly; times are inclusive).
struct OpCounters {
  double flops = 0;       ///< floating point operations
  double bytes = 0;       ///< bytes read + written from/to field storage
  double messages = 0;    ///< point-to-point messages posted
  double msg_bytes = 0;   ///< bytes sent in point-to-point messages
  double reductions = 0;  ///< global reductions (allreduce) participated in

  OpCounters& operator+=(const OpCounters& o) {
    flops += o.flops;
    bytes += o.bytes;
    messages += o.messages;
    msg_bytes += o.msg_bytes;
    reductions += o.reductions;
    return *this;
  }
};

/// One node in the region tree.
struct RegionNode {
  std::string name;
  double seconds = 0;        ///< inclusive wall time
  std::int64_t calls = 0;
  OpCounters counters;       ///< counters charged directly to this region
  std::map<std::string, std::unique_ptr<RegionNode>> children;

  RegionNode* child(const std::string& child_name);
  /// Counters of this region plus all descendants.
  OpCounters inclusive_counters() const;
  /// Sum of children's inclusive seconds (to derive "other" time).
  double child_seconds() const;
};

/// One timestamped region interval, recorded only while the timeline is
/// enabled (see Profiler::enable_timeline). Times are seconds since the
/// epoch passed to enable_timeline, so recorders sharing that epoch (the
/// telemetry layer's TraceRecorder) land on the same clock.
struct ProfileTimelineEvent {
  std::string path;   ///< slash-joined region path ("step/pressure/precon")
  int depth = 0;      ///< nesting depth (1 = top-level region)
  double t_begin = 0;
  double t_end = 0;
};

class Profiler;

/// RAII region scope.
class ScopedRegion {
 public:
  ScopedRegion(Profiler& prof, const std::string& name);
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;
  ~ScopedRegion();

 private:
  Profiler& prof_;
};

class Profiler {
 public:
  Profiler();

  /// Enter/exit a named child region of the current region.
  void push(const std::string& name);
  void pop();

  /// RAII helper: `auto r = prof.scope("pressure");`
  ScopedRegion scope(const std::string& name) { return ScopedRegion(*this, name); }

  /// Charge counters to the *current* region (thread-safe; see file comment).
  void add_flops(double n) { charge(current_->counters.flops, n); }
  void add_bytes(double n) { charge(current_->counters.bytes, n); }
  void add_message(double bytes) {
    charge(current_->counters.messages, 1);
    charge(current_->counters.msg_bytes, bytes);
  }
  void add_reduction() { charge(current_->counters.reductions, 1); }
  void add(const OpCounters& c) {
    OpCounters& dst = current_->counters;
    charge(dst.flops, c.flops);
    charge(dst.bytes, c.bytes);
    charge(dst.messages, c.messages);
    charge(dst.msg_bytes, c.msg_bytes);
    charge(dst.reductions, c.reductions);
  }

  /// Reset all accumulated times/counters but keep the tree shape.
  void reset();

  const RegionNode& root() const { return root_; }
  RegionNode& root() { return root_; }

  /// Find a region by slash-separated path ("step/pressure"); nullptr if absent.
  const RegionNode* find(const std::string& path) const;

  /// Multi-line human-readable report of the region tree with times,
  /// percentages of parent and counters.
  std::string report() const;

  /// Disable timing (counters still accumulate); used when replaying for
  /// operation counting only.
  void set_timing_enabled(bool on) { timing_enabled_ = on; }

  /// Record a timestamped event for every region interval (in addition to
  /// the aggregate tree) so the telemetry layer can export a Chrome trace.
  /// `epoch` is the clock origin shared with other recorders; `max_events`
  /// bounds memory — further intervals are counted in timeline_dropped()
  /// instead of stored. Off by default: the aggregate-only hot path stays a
  /// single branch. Same threading contract as push/pop (owner thread only).
  void enable_timeline(std::chrono::steady_clock::time_point epoch,
                       usize max_events = 1u << 18);
  void disable_timeline() { timeline_enabled_ = false; }
  bool timeline_enabled() const { return timeline_enabled_; }
  const std::vector<ProfileTimelineEvent>& timeline() const { return timeline_; }
  usize timeline_dropped() const { return timeline_dropped_; }

 private:
  static void charge(double& counter, double n) {
    std::atomic_ref<double>(counter).fetch_add(n, std::memory_order_relaxed);
  }

  using Clock = std::chrono::steady_clock;
  struct Frame {
    RegionNode* node;
    Clock::time_point start;
    std::string path;  ///< filled only while the timeline is enabled
  };
  RegionNode root_;
  RegionNode* current_;
  std::vector<Frame> stack_;
  bool timing_enabled_ = true;

  bool timeline_enabled_ = false;
  Clock::time_point timeline_epoch_{};
  usize timeline_max_events_ = 0;
  usize timeline_dropped_ = 0;
  std::vector<ProfileTimelineEvent> timeline_;
};

}  // namespace felis
