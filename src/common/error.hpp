/// \file error.hpp
/// \brief Error handling: checked assertions that throw, never abort.
///
/// Library code throws `felis::Error` on contract violations so that tests
/// can assert on failure paths and long-running drivers can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace felis {

/// Exception type thrown by all felis contract checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "felis check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace felis

/// Always-on contract check (enabled in release builds too; the cost is
/// negligible outside inner kernels, which use FELIS_ASSERT instead).
#define FELIS_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::felis::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FELIS_CHECK_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream os_;                                     \
      os_ << msg;                                                 \
      ::felis::detail::fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                             \
  } while (0)

/// Debug-only assertions for inner kernels (compiled out with NDEBUG).
/// Like every felis contract check they throw `felis::Error` — never abort —
/// so failure paths are testable and long-running drivers can recover.
#ifdef NDEBUG
// sizeof keeps the expression unevaluated (no side effects, no cost) while
// still "using" the variables it names, so NDEBUG builds stay warning-free.
#define FELIS_ASSERT(expr) ((void)sizeof(!(expr)))
#define FELIS_ASSERT_MSG(expr, msg) ((void)sizeof(!(expr)))
#else
#define FELIS_ASSERT(expr) FELIS_CHECK(expr)
#define FELIS_ASSERT_MSG(expr, msg) FELIS_CHECK_MSG(expr, msg)
#endif
