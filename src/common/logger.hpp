/// \file logger.hpp
/// \brief Minimal levelled logger with rank-aware prefixes.
///
/// Mirrors Neko's `log` module: sections, levelled messages, and the ability
/// to silence output entirely (used by tests and by non-root ranks).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace felis {

enum class LogLevel { kQuiet = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Process-wide logger. Not thread-safe for interleaved message *content*;
/// each message is emitted with a single stream insertion.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Optional prefix identifying the simulated rank ("[rank 3] ").
  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }

  void log(LogLevel level, const std::string& msg);

  /// Emit a `=== title ===` section header at info level.
  void section(const std::string& title);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::string prefix_;
};

namespace logging {
template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace logging

#define FELIS_LOG_INFO(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kInfo, ::felis::logging::format(__VA_ARGS__))
#define FELIS_LOG_WARN(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kWarn, ::felis::logging::format(__VA_ARGS__))
#define FELIS_LOG_DEBUG(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kDebug, ::felis::logging::format(__VA_ARGS__))

}  // namespace felis
