/// \file logger.hpp
/// \brief Minimal levelled logger with rank-aware prefixes.
///
/// Mirrors Neko's `log` module: sections, levelled messages, and the ability
/// to silence output entirely (used by tests and by non-root ranks).
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace felis {

enum class LogLevel { kQuiet = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Process-wide logger, safe to use from simulated-rank threads: the level is
/// atomic (checked lock-free on the hot path) and the prefix and stream
/// emission are guarded by one mutex, so concurrent messages never interleave
/// mid-line.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Optional prefix identifying the simulated rank ("[rank 3] ").
  void set_prefix(std::string prefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    prefix_ = std::move(prefix);
  }

  void log(LogLevel level, const std::string& msg);

  /// Emit a `=== title ===` section header at info level.
  void section(const std::string& title);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  ///< guards prefix_ and output emission
  std::string prefix_;
};

namespace logging {
template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace logging

#define FELIS_LOG_ERROR(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kError, ::felis::logging::format(__VA_ARGS__))
#define FELIS_LOG_INFO(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kInfo, ::felis::logging::format(__VA_ARGS__))
#define FELIS_LOG_WARN(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kWarn, ::felis::logging::format(__VA_ARGS__))
#define FELIS_LOG_DEBUG(...) \
  ::felis::Logger::instance().log(::felis::LogLevel::kDebug, ::felis::logging::format(__VA_ARGS__))

}  // namespace felis
