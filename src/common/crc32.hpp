/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) checksums.
///
/// The checkpoint container stores a CRC per header and per payload section
/// so that torn writes, truncation and silent bitrot are detected on load
/// instead of being deserialized into garbage integrator state. The
/// polynomial and bit order match zlib's crc32, so external tooling can
/// verify felis checkpoint sections without linking felis.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace felis {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes. Chainable: pass a previous result as `seed` to
/// extend the checksum over a split buffer.
inline std::uint32_t crc32(const std::byte* data, usize n,
                           std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (usize i = 0; i < n; ++i)
    c = table[(c ^ static_cast<std::uint32_t>(data[i])) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

inline std::uint32_t crc32(const std::vector<std::byte>& data,
                           std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace felis
