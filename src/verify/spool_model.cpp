#include "verify/spool_model.hpp"

#include <sstream>

#include "sched/campaign.hpp"
#include "sched/manifest.hpp"

namespace felis::verify {

namespace {

/// A line killed mid-append never received its closing brace; the fold
/// (apply_manifest_line) skips it and the writer heals it on reopen.
bool is_torn(const std::string& line) {
  return line.empty() || line.back() != '}';
}

}  // namespace

SpoolModel::SpoolModel(SpoolModelOptions opt) : opt_(std::move(opt)) {}

std::string SpoolModel::sub_id(int i) const {
  return "s" + std::to_string(i);
}

std::string SpoolModel::case_id(int i) const {
  return sub_id(i) + "-c0";
}

std::string SpoolModel::tenant_of(int i) const {
  return "t" + std::to_string(i % 2);
}

bool SpoolModel::is_rejected_by_policy(int i) const {
  return opt_.rejects && i == opt_.submissions - 1;
}

std::vector<SpoolModel::State> SpoolModel::initial() const {
  State s;
  s.subs.resize(static_cast<usize>(opt_.submissions));
  return {s};
}

std::vector<std::pair<std::string, SpoolModel::State>> SpoolModel::successors(
    const State& s) const {
  std::vector<std::pair<std::string, State>> out;
  // Violations are absorbing: the checker already has its counterexample.
  if (!invariant(s).empty()) return out;

  // The production fold every protocol condition consults. A throwing fold
  // is itself an invariant violation, caught above.
  sched::ManifestState ms;
  ms.found = true;
  for (const std::string& line : s.journal) sched::apply_manifest_line(ms, line);

  // DurableAppendWriter heals the torn tail when the service reopens the
  // journal to append — mirror that before every append.
  const auto append = [](State& t, const std::string& record) {
    if (!t.journal.empty() && is_torn(t.journal.back())) t.journal.pop_back();
    t.journal.push_back(record);
  };
  // Every append gets a torn sibling: the crash landed mid-record, so only
  // a prefix (which the fold skips) reached the disk.
  const auto emit_append = [&](const State& base, const std::string& record,
                               const std::string& label) {
    State t = base;
    append(t, record);
    out.emplace_back(label, std::move(t));
    if (opt_.torn_appends) {
      State torn = base;
      append(torn, record.substr(0, record.size() / 2));
      out.emplace_back(label + " [torn: killed mid-append]", std::move(torn));
    }
  };

  for (int i = 0; i < opt_.submissions; ++i) {
    const SubRt& rt = s.subs[static_cast<usize>(i)];
    const std::string id = sub_id(i);

    const auto sub_it = ms.submissions.find(id);
    const std::string decision =
        sub_it != ms.submissions.end() ? sub_it->second.decision : "";
    const bool decided_terminal =
        sub_it != ms.submissions.end() && sub_it->second.terminal();
    const bool admitted = decision == "admitted";
    const bool rejected = decision == "rejected";
    const auto case_it = ms.cases.find(case_id(i));
    const bool enqueued = case_it != ms.cases.end();

    // Client: atomic rename into the spool (no journal involvement).
    if (!rt.dropped) {
      State t = s;
      t.subs[static_cast<usize>(i)].dropped = true;
      t.subs[static_cast<usize>(i)].spool = true;
      out.emplace_back("drop " + id, std::move(t));
    }

    // Step 1 — journal the decision. Enabled only while the fold shows no
    // terminal decision (the decided-check the seeded bug skips).
    if (rt.spool && (!decided_terminal || opt_.buggy_skip_decided_check)) {
      const bool reject = is_rejected_by_policy(i);
      const std::string record = sched::format_submit_record(
          id, tenant_of(i), /*priority=*/i, reject ? "rejected" : "admitted",
          reject ? "over-thread-budget" : "", /*cases=*/1,
          /*cost_seconds=*/1.0, /*campaign_seconds=*/0.0);
      emit_append(s, record,
                  std::string("decide ") + id + " -> " +
                      (reject ? "rejected" : "admitted") +
                      (decided_terminal ? " [bug: already decided]" : ""));
    }

    // Step 2 — enqueue the expanded case: declaration + queued transition,
    // exactly what Scheduler::submit_case journals. Re-enabled until the
    // queued record is durable; a crash between the two appends re-runs the
    // step, and the duplicate declaration is harmless (readers fold
    // declarations last-writer-wins).
    if (rt.spool && admitted && !enqueued) {
      sched::CaseSpec cs;
      cs.id = case_id(i);
      cs.threads = 1;
      cs.steps = 1;
      cs.tenant = tenant_of(i);
      cs.priority = i;
      const std::string decl = sched::format_case_record(cs);
      const std::string queued =
          sched::format_run_record(cs.id, "queued", 1, 0.0, 0.0);
      // A crash between the two appends leaves the declaration durable but
      // not the queued record; the retry then re-writes the declaration.
      // The duplicate is invisible to every reader (declarations fold
      // last-writer-wins), so the model keeps a single copy — otherwise
      // each crash/retry round would grow the journal without bound.
      bool has_decl = false;
      for (const std::string& line : s.journal) has_decl |= line == decl;
      const auto with_decl = [&](const State& base) {
        State t = base;
        if (!has_decl) append(t, decl);
        return t;
      };
      {
        State t = with_decl(s);
        append(t, queued);
        out.emplace_back("enqueue " + cs.id, std::move(t));
      }
      if (opt_.torn_appends) {
        // Crash between the declaration and the queued record...
        if (!has_decl)
          out.emplace_back("enqueue " + cs.id + " [crash between records]",
                           with_decl(s));
        // ...and mid-append of the queued record itself.
        State torn = with_decl(s);
        append(torn, queued.substr(0, queued.size() / 2));
        out.emplace_back("enqueue " + cs.id + " [torn: killed mid-append]",
                         std::move(torn));
      }
    }

    // Step 3 — archive the raw submission text (atomic write: it either
    // fully exists or not at all, so no torn sibling).
    if (rt.spool && admitted && enqueued && !rt.archived) {
      State t = s;
      t.subs[static_cast<usize>(i)].archived = true;
      out.emplace_back("archive " + id, std::move(t));
    }

    // Step 4 — unlink the spool file. Legal only once everything the
    // submission owes the campaign is durable; the seeded bug jumps here
    // straight from the admission decision.
    const bool unlink_ok =
        opt_.buggy_unlink_before_archive ? admitted
                                         : (admitted && enqueued && rt.archived);
    if (rt.spool && unlink_ok) {
      State t = s;
      t.subs[static_cast<usize>(i)].spool = false;
      out.emplace_back("unlink " + id, std::move(t));
    }
    if (rt.spool && rejected) {
      State t = s;
      t.subs[static_cast<usize>(i)].spool = false;
      out.emplace_back("unlink rejected " + id, std::move(t));
    }
  }
  return out;
}

std::string SpoolModel::invariant(const State& s) const {
  // The production fold must accept the journal in every reachable state: a
  // second terminal decision for one submission throws ManifestReplayError —
  // that *is* the double-admit.
  sched::ManifestState ms;
  ms.found = true;
  try {
    for (const std::string& line : s.journal)
      sched::apply_manifest_line(ms, line);
  } catch (const sched::ManifestReplayError& err) {
    return std::string("double admission: the fold rejected the journal: ") +
           err.what();
  }

  for (int i = 0; i < opt_.submissions; ++i) {
    const SubRt& rt = s.subs[static_cast<usize>(i)];
    const std::string id = sub_id(i);
    const auto sub_it = ms.submissions.find(id);
    const bool decided =
        sub_it != ms.submissions.end() && sub_it->second.terminal();
    const bool admitted = decided && sub_it->second.decision == "admitted";
    const bool enqueued = ms.cases.find(case_id(i)) != ms.cases.end();

    if (decided && !rt.dropped)
      return "decision journalled for '" + id +
             "' which no client ever submitted";
    if (rt.archived && !admitted)
      return "'" + id + "' archived without a durable admission decision";
    if (enqueued && !admitted)
      return "case of '" + id + "' enqueued without a durable admission";
    if (!rt.spool && rt.dropped) {
      // The spool entry is gone: everything the submission owes the
      // campaign must already be durable.
      if (!decided)
        return "spool file of '" + id +
               "' removed with no durable decision: the submission is lost";
      if (admitted && !enqueued)
        return "admitted submission '" + id +
               "' unlinked before its case was journalled: work lost";
      if (admitted && !rt.archived)
        return "admitted submission '" + id +
               "' unlinked before its archive was written: parameters lost";
    }
  }
  return "";
}

std::string SpoolModel::key(const State& s) const {
  std::ostringstream os;
  for (const SubRt& rt : s.subs)
    os << rt.dropped << rt.spool << rt.archived << ';';
  os << '#';
  for (const std::string& line : s.journal) os << line << '\n';
  return os.str();
}

std::string SpoolModel::print(const State& s) const {
  std::ostringstream os;
  for (int i = 0; i < opt_.submissions; ++i) {
    const SubRt& rt = s.subs[static_cast<usize>(i)];
    os << "  " << sub_id(i) << ": dropped=" << rt.dropped
       << " spool=" << rt.spool << " archived=" << rt.archived << "\n";
  }
  if (!s.journal.empty()) {
    os << "  journal (" << s.journal.size() << " records):\n";
    for (const std::string& line : s.journal) os << "    " << line << "\n";
  }
  return os.str();
}

}  // namespace felis::verify
