/// \file manifest_model.hpp
/// \brief Explicit-state model of the campaign-manifest protocol.
///
/// Models a campaign of C cases on W pool workers under a GCD-style thread
/// budget, journalling every state transition through the *production*
/// record formatters (sched::format_run_record et al.) and replaying crashes
/// through the *production* replay transition (sched::apply_manifest_line).
/// The checker explores every interleaving of admissions, completions,
/// failures and retries, a process crash after every journalled record —
/// including torn-tail variants of the final line (the fsync-per-record
/// contract: at most one torn final line) — and duplicate stale-terminal
/// record faults.
///
/// Invariants checked in every reachable state:
///  * a case whose `done` record is durable is never re-admitted (no
///    completed case ever re-runs);
///  * Σ threads of running cases never exceeds the thread budget, and the
///    number of concurrently running cases never exceeds the worker count;
///  * a crash at any journalled point leaves a recoverable manifest: replay
///    never throws on a single-writer journal, and re-seeds exactly the
///    non-durable-done cases;
///  * a stale duplicate terminal record is *rejected* by replay
///    (ManifestReplayError) instead of resurrecting or masking a case.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace felis::verify {

struct ManifestModelOptions {
  int cases = 3;
  int workers = 2;
  int thread_budget = 3;
  /// Simulated ranks per case (cycled if shorter than `cases`).
  std::vector<int> case_threads = {1, 2, 1};
  /// In-session retry allowance per case (scheduler cfg.max_retries).
  int max_retries = 1;
  /// Total failure injections across the run (bounds the retry branching).
  int max_total_failures = 2;
  /// Crash/resume depth: 2 = one crash at every journalled point, then the
  /// resumed session runs to completion.
  int max_sessions = 2;
  /// Explore torn variants of the final journal line at each crash point.
  bool torn_tails = true;
  /// Explore stale duplicate terminal-record appends (the fault the
  /// duplicate-rejection fix addresses).
  bool duplicate_faults = true;
};

class ManifestModel {
 public:
  explicit ManifestModel(ManifestModelOptions opt);

  struct CaseRt {
    // 0 = queued, 1 = running, 2 = done, 3 = failed (terminal).
    int status = 0;
    int attempt = 1;         ///< attempt number of the current/next run
    int session_retries = 0;
    int done_journal_idx = -1;  ///< journal index of the done record, if any
  };

  struct State {
    std::vector<std::string> journal;  ///< durable records, in append order
    std::vector<CaseRt> cases;
    int threads_in_flight = 0;
    int running = 0;
    int session = 1;
    int failures_injected = 0;
    bool duplicate_rejected = false;  ///< absorbing: fault correctly refused
    std::string violation;            ///< transition-time invariant breach
  };

  std::vector<State> initial() const;
  std::vector<std::pair<std::string, State>> successors(const State& s) const;
  std::string invariant(const State& s) const;
  std::string key(const State& s) const;
  std::string print(const State& s) const;

  const ManifestModelOptions& options() const { return opt_; }

 private:
  std::string case_id(int i) const;
  int threads_of(int i) const;
  /// Crash now, replay the surviving journal through the production parser,
  /// and re-seed the next session exactly as Scheduler::run() does.
  /// `torn_prefix_len` < 0 keeps the final line intact; otherwise the final
  /// line survives only as its first `torn_prefix_len` bytes.
  State crash_and_resume(const State& s, long torn_prefix_len) const;

  ManifestModelOptions opt_;
};

}  // namespace felis::verify
