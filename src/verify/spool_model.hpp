/// \file spool_model.hpp
/// \brief Explicit-state model of the spool admission protocol (src/svc/).
///
/// Models N clients dropping submissions into a campaign service's spool and
/// the service admitting them through the four-step protocol of
/// svc/spool.hpp: (1) journal the decision, (2) enqueue the expanded cases
/// (case + queued records), (3) archive the raw text, (4) unlink the spool
/// file. All journal records go through the *production* formatters
/// (sched::format_submit_record et al.) and every condition is evaluated on
/// the *production* fold (sched::apply_manifest_line), so a counterexample
/// is a real protocol bug, not a modelling artifact.
///
/// Crash placement: the protocol is self-recovering — every step is enabled
/// by what the durable journal and the filesystem say, never by in-memory
/// progress, so a SIGKILL at instant T followed by a restart is exactly the
/// state in which the remaining condition-enabled actions continue. BFS over
/// all action interleavings therefore covers a crash between any two steps
/// for free; the only crash artifact interleaving cannot express is a *torn*
/// journal append (killed mid-record), which the model adds as an explicit
/// sibling of every append (the DurableAppendWriter contract: at most one
/// torn final line, healed on reopen).
///
/// Invariants, checked in every reachable state:
///  * the fold never throws — a second terminal decision for a submission
///    (the double-admit) is exactly what ManifestReplayError rejects;
///  * a journalled decision, an archive or an enqueued case always traces
///    back to a submission the client actually dropped;
///  * a spool file is only ever removed once its decision is durable, and an
///    *admitted* submission is only removed once its cases are journalled
///    AND its raw text is archived — no accepted work is ever lost.
///
/// Two seeded-bug modes demonstrate the protocol's load-bearing steps:
/// `buggy_unlink_before_archive` (unlink as soon as the decision is durable
/// → accepted parameters lost) and `buggy_skip_decided_check` (re-decide a
/// submission whose decision is already durable → the double-admit the fold
/// refuses).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace felis::verify {

struct SpoolModelOptions {
  /// Concurrent submissions (each expands to one case in the model).
  int submissions = 2;
  /// Policy-reject the last submission (exercises the rejected path).
  bool rejects = true;
  /// Explore torn variants of every journal append (crash mid-record).
  bool torn_appends = true;
  /// Seeded bug: unlink an admitted spool file before archive + enqueue.
  bool buggy_unlink_before_archive = false;
  /// Seeded bug: journal a fresh decision even when one is already durable.
  bool buggy_skip_decided_check = false;
};

class SpoolModel {
 public:
  explicit SpoolModel(SpoolModelOptions opt);

  struct SubRt {
    bool dropped = false;   ///< client completed its atomic rename
    bool spool = false;     ///< spool file currently present
    bool archived = false;  ///< raw text durable under submitted/
  };

  struct State {
    std::vector<std::string> journal;  ///< manifest records, append order
    std::vector<SubRt> subs;
  };

  std::vector<State> initial() const;
  std::vector<std::pair<std::string, State>> successors(const State& s) const;
  std::string invariant(const State& s) const;
  std::string key(const State& s) const;
  std::string print(const State& s) const;

  const SpoolModelOptions& options() const { return opt_; }

 private:
  std::string sub_id(int i) const;
  std::string case_id(int i) const;
  std::string tenant_of(int i) const;
  bool is_rejected_by_policy(int i) const;

  SpoolModelOptions opt_;
};

}  // namespace felis::verify
