/// \file checker.hpp
/// \brief Minimal explicit-state model checker (exhaustive BFS over hashed
/// states with counterexample traces).
///
/// The crash-safety protocols — the campaign manifest's run-state journal
/// and the checkpoint rotation — are distributed-systems state machines that
/// example-based kill tests only sample. This checker explores them
/// *exhaustively* at small bounds: breadth-first search over a model's state
/// graph, deduplicating states by a canonical key, evaluating an invariant
/// in every reachable state, and reconstructing the shortest action trace
/// from an initial state to the first violation found (BFS order makes the
/// counterexample minimal in transition count).
///
/// A model is any type providing:
///
///   using State = ...;                               // copyable value
///   std::vector<State> initial() const;
///   std::vector<std::pair<std::string, State>>       // (action label, next)
///       successors(const State&) const;
///   std::string invariant(const State&) const;       // "" = holds
///   std::string key(const State&) const;             // canonical identity
///   std::string print(const State&) const;           // human-readable dump
///
/// The protocol models (manifest_model.*, checkpoint_model.*) call the
/// *production* transition and record-parsing code — a counterexample here
/// is by construction a real bug, and `felis_check` prints it as a replayable
/// action trace.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace felis::verify {

/// One step of a counterexample: the action taken and the state it reached.
struct TraceStep {
  std::string action;  ///< "<initial>" for the first step
  std::string state;   ///< Model::print() of the state after the action
};

struct CheckStats {
  usize states = 0;       ///< distinct states explored
  usize transitions = 0;  ///< edges evaluated (including duplicates)
  usize depth = 0;        ///< deepest BFS layer reached
};

struct CheckResult {
  bool ok = true;        ///< no invariant violation found
  bool complete = true;  ///< state space exhausted within max_states
  std::string violation;
  std::vector<TraceStep> trace;  ///< initial state → violating state
  CheckStats stats;
};

/// Exhaustively explore `model` breadth-first. Stops at the first invariant
/// violation (result.ok == false, shortest trace attached) or when the state
/// space is exhausted; `max_states` bounds runaway models
/// (result.complete == false when hit).
template <class Model>
CheckResult check(const Model& model, usize max_states = 1000000) {
  using State = typename Model::State;

  struct Node {
    State state;
    usize parent;        // index into nodes; self for roots
    std::string action;  // edge label from parent
    usize depth;
  };

  CheckResult result;
  std::vector<Node> nodes;
  std::unordered_map<std::string, usize> seen;  // key -> node index
  std::deque<usize> frontier;

  const auto trace_to = [&](usize idx) {
    std::vector<TraceStep> path;
    while (true) {
      const Node& n = nodes[idx];
      path.push_back({n.action, model.print(n.state)});
      if (n.parent == idx) break;
      idx = n.parent;
    }
    return std::vector<TraceStep>(path.rbegin(), path.rend());
  };

  const auto visit = [&](State state, usize parent, std::string action,
                         usize depth) -> bool {
    const std::string k = model.key(state);
    if (seen.count(k)) return true;
    const usize idx = nodes.size();
    seen.emplace(k, idx);
    nodes.push_back({std::move(state), parent == usize(-1) ? idx : parent,
                     std::move(action), depth});
    result.stats.states = nodes.size();
    if (depth > result.stats.depth) result.stats.depth = depth;
    const std::string bad = model.invariant(nodes[idx].state);
    if (!bad.empty()) {
      result.ok = false;
      result.violation = bad;
      result.trace = trace_to(idx);
      return false;
    }
    frontier.push_back(idx);
    return true;
  };

  for (State s : model.initial())
    if (!visit(std::move(s), usize(-1), "<initial>", 0)) return result;

  while (!frontier.empty()) {
    if (nodes.size() >= max_states) {
      result.complete = false;
      break;
    }
    const usize idx = frontier.front();
    frontier.pop_front();
    // successors() may reallocate nothing in `nodes`; visit() may, so take
    // the expansions by value before inserting.
    const usize depth = nodes[idx].depth;
    auto next = model.successors(nodes[idx].state);
    for (auto& [label, state] : next) {
      ++result.stats.transitions;
      if (!visit(std::move(state), idx, std::move(label), depth + 1))
        return result;
    }
  }
  return result;
}

}  // namespace felis::verify
