#include "verify/manifest_model.hpp"

#include <sstream>

#include "sched/campaign.hpp"
#include "sched/manifest.hpp"

namespace felis::verify {

namespace {

const char* status_name(int status) {
  switch (status) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "failed";
    default: return "?";
  }
}

/// Deterministic stand-in metric so the model exercises the real metrics
/// round trip (format_run_record → extract_json_metrics) per case.
double nu_of(int i) { return 2.0 + i; }

}  // namespace

ManifestModel::ManifestModel(ManifestModelOptions opt) : opt_(std::move(opt)) {
  if (opt_.case_threads.empty()) opt_.case_threads = {1};
}

std::string ManifestModel::case_id(int i) const {
  return "c" + std::to_string(i);
}

int ManifestModel::threads_of(int i) const {
  return opt_.case_threads[static_cast<usize>(i) % opt_.case_threads.size()];
}

std::vector<ManifestModel::State> ManifestModel::initial() const {
  State s;
  s.cases.resize(static_cast<usize>(opt_.cases));
  // Mirror the scheduler's session start: header + case + queued records,
  // all through the production formatters.
  sched::CampaignSpec spec;
  spec.config.name = "model";
  spec.config.workers = opt_.workers;
  spec.config.thread_budget = opt_.thread_budget;
  for (int i = 0; i < opt_.cases; ++i) {
    sched::CaseSpec cs;
    cs.id = case_id(i);
    cs.threads = threads_of(i);
    cs.steps = 1;
    spec.cases.push_back(cs);
  }
  s.journal.push_back(sched::format_header_record(spec));
  for (const sched::CaseSpec& cs : spec.cases)
    s.journal.push_back(sched::format_case_record(cs));
  for (int i = 0; i < opt_.cases; ++i)
    s.journal.push_back(
        sched::format_run_record(case_id(i), "queued", 1, 0.0, 0.0));
  return {s};
}

ManifestModel::State ManifestModel::crash_and_resume(
    const State& s, long torn_prefix_len) const {
  State next;
  next.session = s.session + 1;
  next.failures_injected = s.failures_injected;
  next.cases.resize(s.cases.size());

  // The on-disk journal the next session observes: every record but the
  // last is past its fsync; the final one may be torn mid-append.
  std::vector<std::string> surviving(s.journal.begin(), s.journal.end());
  long last_complete = static_cast<long>(surviving.size()) - 1;
  if (torn_prefix_len >= 0 && !surviving.empty()) {
    surviving.back() =
        surviving.back().substr(0, static_cast<usize>(torn_prefix_len));
    --last_complete;
    if (surviving.back().empty()) surviving.pop_back();
  }

  // Replay through the production parser (read_manifest's exact fold).
  sched::ManifestState ms;
  ms.found = true;
  try {
    for (const std::string& line : surviving)
      sched::apply_manifest_line(ms, line);
  } catch (const sched::ManifestReplayError& err) {
    // A single scheduler never writes conflicting terminal records; replay
    // must accept every crash-truncated single-writer journal.
    next.violation =
        std::string("replay rejected a single-writer journal: ") + err.what();
    return next;
  }

  // Re-seed exactly as Scheduler::run() does and cross-check the replay
  // against the model's ground truth of which done records became durable.
  // The check is one-directional on purpose: a durable done record MUST be
  // recovered (else a completed case re-runs), and a recovered completion
  // MUST trace back to a done record that was at least written (possibly as
  // the torn final line — a torn line whose surviving prefix still parses
  // identically is benign extra recovery, not a violation).
  const long last_written = static_cast<long>(surviving.size()) - 1;
  for (usize i = 0; i < s.cases.size(); ++i) {
    const std::string id = case_id(static_cast<int>(i));
    const long done_idx = s.cases[i].done_journal_idx;
    const bool done_durable = done_idx >= 0 && done_idx <= last_complete;
    const bool done_written = done_idx >= 0 && done_idx <= last_written;
    const auto it = ms.cases.find(id);
    const bool replay_done = it != ms.cases.end() && it->second.completed();
    if (done_durable && !replay_done) {
      next.violation = "durable done record for '" + id +
                       "' lost on replay: the completed case would re-run";
      return next;
    }
    if (replay_done && !done_written) {
      next.violation = "replay invented a completion for '" + id +
                       "' with no done record in the journal";
      return next;
    }
    CaseRt& rt = next.cases[i];
    if (replay_done) {
      // Skipped on resume: never re-queued, metrics preserved for the
      // campaign aggregate.
      rt.status = 2;
      rt.attempt = s.cases[i].attempt;
      rt.done_journal_idx = s.cases[i].done_journal_idx;
      if (done_durable) {
        const auto nu = it->second.metrics.find("Nu");
        if (nu == it->second.metrics.end() ||
            nu->second != nu_of(static_cast<int>(i))) {
          next.violation =
              "replay lost or corrupted the done metrics of '" + id + "'";
          return next;
        }
      }
    } else {
      const int prior = it != ms.cases.end() ? it->second.attempts : 0;
      rt.status = 0;
      rt.attempt = prior + 1;
    }
  }

  // The resumed session is the last one the model explores (no further
  // crash): its journal is never read again, so it is dropped from the
  // state — this collapses all crash points that replay to the same
  // scheduler state into one node, which is what keeps exhaustive crash
  // placement tractable. (The scheduler's resume/queued appends are covered
  // by session 1, which journals every record kind.)
  if (next.session < opt_.max_sessions) {
    next.journal = std::move(surviving);
    next.journal.push_back(sched::format_resume_record(0));
    for (usize i = 0; i < next.cases.size(); ++i)
      if (next.cases[i].status == 0)
        next.journal.push_back(
            sched::format_run_record(case_id(static_cast<int>(i)), "queued",
                                     next.cases[i].attempt, 0.0, 0.0));
  }
  return next;
}

std::vector<std::pair<std::string, ManifestModel::State>>
ManifestModel::successors(const State& s) const {
  std::vector<std::pair<std::string, State>> out;
  // Violations and correctly-rejected duplicate faults are absorbing.
  if (!s.violation.empty() || s.duplicate_rejected) return out;

  // The final modelled session's journal is never read again (see
  // crash_and_resume), so its appends are elided to collapse the state space.
  const bool journaling = s.session < opt_.max_sessions;
  const auto append = [&](State& st, const std::string& record) {
    if (journaling) st.journal.push_back(record);
  };

  const int n = static_cast<int>(s.cases.size());
  for (int i = 0; i < n; ++i) {
    const CaseRt& rt = s.cases[static_cast<usize>(i)];
    const std::string id = case_id(i);

    // Admit: mirrors the worker-pool rule — a queued case starts only while
    // a worker is free and its threads fit the remaining budget.
    if (rt.status == 0 && s.running < opt_.workers &&
        s.threads_in_flight + threads_of(i) <= opt_.thread_budget) {
      State t = s;
      CaseRt& trt = t.cases[static_cast<usize>(i)];
      trt.status = 1;
      t.running += 1;
      t.threads_in_flight += threads_of(i);
      // A durable done record for a case that gets re-admitted is the
      // "completed case re-runs" catastrophe; flag it at the transition.
      if (trt.done_journal_idx >= 0)
        t.violation = "completed case '" + id + "' re-admitted";
      append(t, sched::format_run_record(id, "running", rt.attempt, 0.0, 0.0));
      out.emplace_back("admit " + id + " (attempt " +
                           std::to_string(rt.attempt) + ")",
                       std::move(t));
    }

    if (rt.status == 1) {
      // Complete: journal done (with metrics) after the work, as the
      // scheduler does.
      {
        State t = s;
        CaseRt& trt = t.cases[static_cast<usize>(i)];
        trt.status = 2;
        t.running -= 1;
        t.threads_in_flight -= threads_of(i);
        append(t, sched::format_run_record(id, "done", rt.attempt, 0.0, 0.0,
                                           "", {{"Nu", nu_of(i)}}));
        trt.done_journal_idx = static_cast<int>(t.journal.size()) - 1;
        out.emplace_back("complete " + id, std::move(t));
      }
      // Fail: retry while the session allowance lasts, else terminal.
      if (s.failures_injected < opt_.max_total_failures) {
        State t = s;
        CaseRt& trt = t.cases[static_cast<usize>(i)];
        t.running -= 1;
        t.threads_in_flight -= threads_of(i);
        t.failures_injected += 1;
        if (rt.session_retries < opt_.max_retries) {
          append(t, sched::format_run_record(id, "retried", rt.attempt, 0.0,
                                             0.0, "injected failure"));
          append(t, sched::format_run_record(id, "queued", rt.attempt + 1, 0.0,
                                             0.0));
          trt.status = 0;
          trt.attempt += 1;
          trt.session_retries += 1;
          out.emplace_back("fail+retry " + id, std::move(t));
        } else {
          append(t, sched::format_run_record(id, "failed", rt.attempt, 0.0,
                                             0.0, "injected failure"));
          trt.status = 3;
          out.emplace_back("fail-terminal " + id, std::move(t));
        }
      }
    }

    // Duplicate stale-terminal fault: a second writer (or an at-least-once
    // bug) appends a conflicting terminal record. Replay must *reject* it —
    // last-writer-wins would re-run a completed case or mask a failure.
    if (opt_.duplicate_faults && (rt.status == 2 || rt.status == 3) &&
        journaling) {
      State t = s;
      const std::string stale = sched::format_run_record(
          id, rt.status == 2 ? "failed" : "done", rt.attempt, 0.0, 0.0,
          "stale duplicate");
      t.journal.push_back(stale);
      bool rejected = false;
      try {
        sched::ManifestState ms;
        ms.found = true;
        for (const std::string& line : t.journal)
          sched::apply_manifest_line(ms, line);
      } catch (const sched::ManifestReplayError&) {
        rejected = true;
      }
      if (rejected)
        t.duplicate_rejected = true;
      else
        t.violation = "duplicate terminal record for '" + id +
                      "' accepted by replay (case would " +
                      (rt.status == 2 ? "re-run" : "be masked as done") + ")";
      out.emplace_back("inject stale terminal for " + id, std::move(t));
    }
  }

  // Crash after any journalled record, with the fsync-per-record torn-tail
  // menu: final line durable, torn mid-value, torn to one byte, or lost.
  if (s.session < opt_.max_sessions && !s.journal.empty()) {
    const long len = static_cast<long>(s.journal.back().size());
    std::vector<long> variants = {-1};
    if (opt_.torn_tails) {
      variants.push_back(0);
      if (len > 1) variants.push_back(len / 2);
      if (len > 2) variants.push_back(len - 1);
    }
    for (const long torn : variants) {
      State t = crash_and_resume(s, torn);
      std::ostringstream label;
      label << "crash after record " << s.journal.size();
      if (torn >= 0) label << " (final line torn at byte " << torn << ")";
      out.emplace_back(label.str(), std::move(t));
    }
  }
  return out;
}

std::string ManifestModel::invariant(const State& s) const {
  if (!s.violation.empty()) return s.violation;
  // Budget/bookkeeping invariants, recomputed from scratch.
  int threads = 0;
  int running = 0;
  for (usize i = 0; i < s.cases.size(); ++i) {
    if (s.cases[i].status == 1) {
      threads += threads_of(static_cast<int>(i));
      running += 1;
    }
  }
  if (threads != s.threads_in_flight)
    return "thread accounting drifted: ledger " +
           std::to_string(s.threads_in_flight) + ", actual " +
           std::to_string(threads);
  if (threads > opt_.thread_budget)
    return "thread budget oversubscribed: " + std::to_string(threads) + " > " +
           std::to_string(opt_.thread_budget);
  if (running > opt_.workers)
    return "more running cases than workers: " + std::to_string(running);
  return "";
}

std::string ManifestModel::key(const State& s) const {
  std::ostringstream os;
  os << s.session << '|' << s.running << '|' << s.threads_in_flight << '|'
     << s.failures_injected << '|' << s.duplicate_rejected << '|'
     << s.violation << '#';
  for (const CaseRt& rt : s.cases)
    os << rt.status << ',' << rt.attempt << ',' << rt.session_retries << ','
       << rt.done_journal_idx << ';';
  for (const std::string& line : s.journal) os << line << '\n';
  return os.str();
}

std::string ManifestModel::print(const State& s) const {
  std::ostringstream os;
  os << "session " << s.session << ", threads " << s.threads_in_flight << "/"
     << opt_.thread_budget << ", running " << s.running << "/" << opt_.workers;
  if (s.duplicate_rejected) os << ", duplicate fault rejected";
  os << "\n";
  for (usize i = 0; i < s.cases.size(); ++i) {
    const CaseRt& rt = s.cases[i];
    os << "  " << case_id(static_cast<int>(i)) << ": "
       << status_name(rt.status) << " (attempt " << rt.attempt
       << ", session retries " << rt.session_retries;
    if (rt.done_journal_idx >= 0)
      os << ", done record @" << rt.done_journal_idx;
    os << ")\n";
  }
  if (!s.journal.empty()) {
    os << "  journal (" << s.journal.size() << " records):\n";
    for (const std::string& line : s.journal) os << "    " << line << "\n";
  }
  if (!s.violation.empty()) os << "  VIOLATION: " << s.violation << "\n";
  return os.str();
}

}  // namespace felis::verify
