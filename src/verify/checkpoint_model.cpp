#include "verify/checkpoint_model.hpp"

#include <algorithm>
#include <sstream>

#include "fluid/checkpoint_policy.hpp"

namespace felis::verify {

namespace {

constexpr const char* kBasename = "felis";

const char* status_name(int status) {
  switch (status) {
    case CheckpointModel::kValid: return "valid";
    case CheckpointModel::kTorn: return "torn";
    case CheckpointModel::kCorrupt: return "corrupt";
    default: return "?";
  }
}

/// Replace-or-insert the finalized file for `step` (atomic rename replaces
/// an existing target in place).
void put_file(CheckpointModel::State& s, int step, int status) {
  const std::string name =
      fluid::checkpoint_file_name(kBasename, step);
  for (auto& f : s.files) {
    if (f.name == name) {
      f.status = status;
      return;
    }
  }
  s.files.push_back({name, status});
}

}  // namespace

CheckpointModel::CheckpointModel(CheckpointModelOptions opt)
    : opt_(std::move(opt)) {}

std::vector<CheckpointModel::State> CheckpointModel::initial() const {
  State s;
  s.retries_left = opt_.max_retries;
  s.faults_left = opt_.fault_budget;
  // A foreign file that rotation and recovery must treat as invisible
  // (checkpoint_step_from_name rejects it).
  s.files.push_back({"notes.txt", kValid});
  return {s};
}

int CheckpointModel::recovery_target(const State& s) const {
  // Exactly the production scan: parse names, order newest-first, take the
  // first file whose CRCs (ghost status) check out.
  std::vector<std::int64_t> steps;
  for (const FileEntry& f : s.files) {
    const auto step = fluid::checkpoint_step_from_name(f.name, kBasename);
    if (step) steps.push_back(*step);
  }
  for (const std::int64_t step : fluid::checkpoint_recovery_order(steps)) {
    const std::string name = fluid::checkpoint_file_name(kBasename, step);
    for (const FileEntry& f : s.files) {
      if (f.name == name && f.status == kValid) return static_cast<int>(step);
      if (f.name == name) break;  // present but torn/corrupt: skip it
    }
  }
  return 0;
}

void CheckpointModel::prune(State& s) const {
  std::vector<std::int64_t> steps;
  for (const FileEntry& f : s.files) {
    const auto step = fluid::checkpoint_step_from_name(f.name, kBasename);
    if (step) steps.push_back(*step);
  }
  for (const std::int64_t victim :
       fluid::checkpoint_prune_victims(steps, opt_.keep)) {
    const std::string name = fluid::checkpoint_file_name(kBasename, victim);
    s.files.erase(std::remove_if(s.files.begin(), s.files.end(),
                                 [&](const FileEntry& f) {
                                   return f.name == name;
                                 }),
                  s.files.end());
  }
}

void CheckpointModel::check_recovery(State& s, int before) const {
  // Ghost truth: the newest step whose finalized file is valid.
  int ghost = 0;
  for (const FileEntry& f : s.files) {
    const auto step = fluid::checkpoint_step_from_name(f.name, kBasename);
    if (step && f.status == kValid && *step > ghost)
      ghost = static_cast<int>(*step);
  }
  const int got = recovery_target(s);
  if (got != ghost) {
    std::ostringstream os;
    os << "recovery returned step " << got << " but the newest valid "
       << "checkpoint on disk is step " << ghost;
    s.violation = os.str();
    return;
  }
  if (opt_.check_monotonic && got < before) {
    std::ostringstream os;
    os << "recovery regressed from step " << before << " to step " << got
       << ": the rotation pruned the last good checkpoint";
    s.violation = os.str();
    return;
  }
  s.recovered = got;
}

std::vector<std::pair<std::string, CheckpointModel::State>>
CheckpointModel::successors(const State& s) const {
  std::vector<std::pair<std::string, State>> out;
  if (!s.violation.empty()) return out;
  if (s.next_step > opt_.steps) return out;  // run finished

  const int step = s.next_step;
  const std::string tag = "step " + std::to_string(step);

  // Clean write: tmp + fsync + rename lands a valid file, then the rotation
  // prunes through the production policy.
  {
    State t = s;
    const int before = t.recovered;
    put_file(t, step, kValid);
    prune(t);
    t.next_step += 1;
    t.retries_left = opt_.max_retries;
    check_recovery(t, before);
    // A clean write must itself become the recovery target.
    if (t.violation.empty() && t.recovered != step) {
      t.violation = "freshly written checkpoint " + std::to_string(step) +
                    " is not the recovery target";
    }
    out.emplace_back("write " + tag + " ok", std::move(t));
  }

  if (s.faults_left > 0) {
    // Transient fail-write: nothing hits the disk; the manager retries with
    // backoff while retries remain, else the run dies and resumes.
    {
      State t = s;
      t.faults_left -= 1;
      if (t.retries_left > 0) {
        t.retries_left -= 1;
        check_recovery(t, t.recovered);
        out.emplace_back("write " + tag + " fail-write (will retry)",
                         std::move(t));
      } else {
        // Retries exhausted: the run is killed and restarts from the newest
        // valid checkpoint; the write is re-attempted next session.
        t.retries_left = opt_.max_retries;
        check_recovery(t, t.recovered);
        out.emplace_back("write " + tag + " fail-write (retries exhausted, "
                         "run resumes)",
                         std::move(t));
      }
    }
    // Torn in-place truncate: a prefix survives at the final path, process
    // dies. Recovery must skip the torn file.
    {
      State t = s;
      const int before = t.recovered;
      t.faults_left -= 1;
      put_file(t, step, kTorn);
      t.retries_left = opt_.max_retries;
      check_recovery(t, before);
      out.emplace_back("write " + tag + " torn (crash mid-write)",
                       std::move(t));
    }
    // Silent corrupt: the write "succeeds", rotation prunes as if it were
    // good — only recovery-time CRCs can tell.
    {
      State t = s;
      const int before = t.recovered;
      t.faults_left -= 1;
      put_file(t, step, kCorrupt);
      prune(t);
      t.next_step += 1;
      t.retries_left = opt_.max_retries;
      check_recovery(t, before);
      out.emplace_back("write " + tag + " silently corrupt", std::move(t));
    }
    // Crash between tmp write and rename: a .tmp leftover that recovery and
    // rotation must never see as a checkpoint.
    {
      State t = s;
      const int before = t.recovered;
      t.faults_left -= 1;
      const std::string tmp =
          fluid::checkpoint_file_name(kBasename, step) + ".tmp";
      if (std::none_of(t.files.begin(), t.files.end(),
                       [&](const FileEntry& f) { return f.name == tmp; }))
        t.files.push_back({tmp, kValid});
      t.retries_left = opt_.max_retries;
      check_recovery(t, before);
      out.emplace_back("write " + tag + " crash before rename (tmp left)",
                       std::move(t));
    }
  }
  return out;
}

std::string CheckpointModel::invariant(const State& s) const {
  return s.violation;
}

std::string CheckpointModel::key(const State& s) const {
  std::ostringstream os;
  os << s.next_step << '|' << s.retries_left << '|' << s.faults_left << '|'
     << s.recovered << '#';
  std::vector<std::string> entries;
  for (const FileEntry& f : s.files)
    entries.push_back(f.name + ":" + std::to_string(f.status));
  std::sort(entries.begin(), entries.end());
  for (const std::string& e : entries) os << e << ';';
  os << s.violation;
  return os.str();
}

std::string CheckpointModel::print(const State& s) const {
  std::ostringstream os;
  os << "next step " << s.next_step << ", retries left " << s.retries_left
     << ", fault budget left " << s.faults_left << ", recovery target step "
     << s.recovered << "\n  directory:\n";
  for (const FileEntry& f : s.files)
    os << "    " << f.name << " [" << status_name(f.status) << "]\n";
  if (!s.violation.empty()) os << "  VIOLATION: " << s.violation << "\n";
  return os.str();
}

}  // namespace felis::verify
