/// \file checkpoint_model.hpp
/// \brief Explicit-state model of checkpoint rotation, retry and recovery.
///
/// Models the CheckpointManager's on-disk rotation as a set of real file
/// *names* (produced by the production fluid::checkpoint_file_name) with a
/// per-file ghost status the model tracks (valid / torn / corrupt — on the
/// real disk the status is what the FELISCK2 CRCs report, a correspondence
/// test_checkpoint.cpp establishes by exhaustive fuzz). Every write step
/// branches over the FaultInjector fault menu — ok, transient fail-write
/// (retried), torn in-place truncate, silent corrupt, crash between tmp
/// write and rename — and rotation pruning plus recovery-order decisions go
/// through the production policy functions (checkpoint_prune_victims,
/// checkpoint_recovery_order, checkpoint_step_from_name).
///
/// Invariants checked in every reachable state:
///  * recovery returns exactly the newest valid checkpoint on disk (never a
///    corrupt/torn file, never an older valid one, never a tmp leftover);
///  * while fewer than `keep` faulty finalized writes can occur
///    (fault_budget < keep), a write never makes recovery regress — the
///    rotation cannot prune the last good checkpoint;
///  * a failed write consumes retries before surfacing, and a crash at any
///    point leaves a recoverable rotation once one durable write succeeded.
///
/// At fault_budget >= keep the regression invariant genuinely fails (keep
/// consecutive silent-corrupt writes push every valid file out of the
/// rotation) — `felis_check --model checkpoint --faults <keep>
/// --expect-violation` prints that counterexample, which is the documented
/// reason checkpoint.keep must exceed the number of consecutive bad writes
/// you want to survive.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace felis::verify {

struct CheckpointModelOptions {
  int steps = 6;         ///< checkpoint steps the run attempts (1..steps)
  int keep = 3;          ///< rotation depth (CheckpointConfig::keep)
  int max_retries = 1;   ///< transient-failure retries per write
  int fault_budget = 2;  ///< total faulty writes the adversary may inject
  /// When true, the "recovery never regresses" invariant is checked; run
  /// with fault_budget >= keep to demonstrate the genuine violation.
  bool check_monotonic = true;
};

class CheckpointModel {
 public:
  explicit CheckpointModel(CheckpointModelOptions opt);

  /// Ghost validity of a finalized file (what the CRCs would report).
  enum FileStatus : int { kValid = 0, kTorn = 1, kCorrupt = 2 };

  struct FileEntry {
    std::string name;  ///< real rotation file name (or a tmp/foreign name)
    int status = kValid;
  };

  struct State {
    std::vector<FileEntry> files;  ///< directory contents, insertion order
    int next_step = 1;
    int retries_left = 0;   ///< remaining retries for the in-flight write
    int faults_left = 0;    ///< adversary budget
    int recovered = 0;      ///< newest valid step after the last transition
    std::string violation;  ///< transition-time invariant breach
  };

  std::vector<State> initial() const;
  std::vector<std::pair<std::string, State>> successors(const State& s) const;
  std::string invariant(const State& s) const;
  std::string key(const State& s) const;
  std::string print(const State& s) const;

  const CheckpointModelOptions& options() const { return opt_; }

  /// What the production recovery scan returns on this directory: walk
  /// checkpoint_recovery_order over the steps checkpoint_step_from_name
  /// recognizes and return the first valid one (0 = none, start from
  /// scratch).
  int recovery_target(const State& s) const;

 private:
  void prune(State& s) const;
  /// Cross-check recovery against ghost truth and the regression invariant,
  /// then record the new recovery point.
  void check_recovery(State& s, int before) const;

  CheckpointModelOptions opt_;
};

}  // namespace felis::verify
