#include "device/stream.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

// Locking discipline
// ------------------
// `Stream`: one mutex (`mutex_`) guards the queue, `running_`, and
// `shutdown_`. Tasks themselves execute *outside* the lock, so a task may
// submit to its own or another stream without self-deadlock. `cv_submit_`
// wakes the worker, `cv_done_` wakes waiters; both are always signalled with
// the protected state already updated, never while a task is running.
//
// `TraceRecorder`: `mutex_` guards `t0_` and `events_`. `now()` must take the
// lock too — `start()` rewrites `t0_` and concurrent `timed()` calls on other
// streams read it (this was a TSan finding).
namespace felis::device {

Stream::Stream(int priority) : priority_(priority) {
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_submit_.notify_all();
  worker_.join();
}

void Stream::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_submit_.notify_one();
}

void Stream::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_submit_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      running_ = true;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      running_ = false;
      if (queue_.empty()) cv_done_.notify_all();
    }
  }
}

void TraceRecorder::start() {
  std::unique_lock<std::mutex> lock(mutex_);
  t0_ = std::chrono::steady_clock::now();
  events_.clear();
}

void TraceRecorder::start_at(std::chrono::steady_clock::time_point epoch) {
  std::unique_lock<std::mutex> lock(mutex_);
  t0_ = epoch;
  events_.clear();
}

double TraceRecorder::now() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void TraceRecorder::record(int stream, const std::string& name, double t_begin,
                           double t_end) {
  std::unique_lock<std::mutex> lock(mutex_);
  events_.push_back({stream, name, t_begin, t_end});
}

void TraceRecorder::timed(int stream, const std::string& name,
                          const std::function<void()>& fn) {
  const double t0 = now();
  fn();
  record(stream, name, t0, now());
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  events_.clear();
}

std::string TraceRecorder::render(int width) const {
  const std::vector<TraceEvent> evs = events();
  if (evs.empty()) return "(empty trace)\n";
  double t_max = 0;
  int max_stream = 0;
  for (const TraceEvent& e : evs) {
    t_max = std::max(t_max, e.t_end);
    max_stream = std::max(max_stream, e.stream);
  }
  if (t_max <= 0) t_max = 1e-9;
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << "timeline (total " << t_max * 1e3
     << " ms, '" << '#' << "' = busy)\n";
  for (int s = 0; s <= max_stream; ++s) {
    std::string row(static_cast<usize>(width), '.');
    for (const TraceEvent& e : evs) {
      if (e.stream != s) continue;
      int b = static_cast<int>(e.t_begin / t_max * width);
      int en = static_cast<int>(e.t_end / t_max * width);
      b = std::clamp(b, 0, width - 1);
      en = std::clamp(en, b + 1, width);
      for (int c = b; c < en; ++c) row[static_cast<usize>(c)] = '#';
    }
    os << "stream " << s << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace felis::device
