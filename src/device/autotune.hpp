/// \file autotune.hpp
/// \brief Kernel autotuning: time candidate implementations, keep the winner.
///
/// "The interface also allows for vendor-specific optimizations, with
/// auto-tuning of key kernels for sustained performance" (§5.1). felis uses
/// the same pattern for its tensor-product kernels: at setup, candidate
/// variants are timed on representative data and the fastest is selected for
/// the rest of the run.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace felis::device {

struct TuneCandidate {
  std::string name;
  std::function<void()> run;
};

struct TuneResult {
  usize best_index = 0;
  std::vector<double> seconds;  ///< best-of-reps time per candidate
};

/// Time each candidate `reps` times (after one warmup) and return the index
/// of the fastest along with all timings.
inline TuneResult autotune(const std::vector<TuneCandidate>& candidates,
                           int reps = 3) {
  FELIS_CHECK_MSG(!candidates.empty(), "autotune: no candidates");
  TuneResult result;
  result.seconds.resize(candidates.size());
  using Clock = std::chrono::steady_clock;
  for (usize c = 0; c < candidates.size(); ++c) {
    candidates[c].run();  // warmup
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      candidates[c].run();
      const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
      if (dt < best) best = dt;
    }
    result.seconds[c] = best;
    if (best < result.seconds[result.best_index]) result.best_index = c;
  }
  return result;
}

}  // namespace felis::device
