/// \file autotune.hpp
/// \brief Kernel autotuning: time candidate implementations, cache winners
/// per (kernel, n, backend, threads) key, optionally persist across runs.
///
/// "The interface also allows for vendor-specific optimizations, with
/// auto-tuning of key kernels for sustained performance" (§5.1). felis uses
/// the same pattern for its tensor-product kernels: at RankSetup
/// construction, candidate variants are timed on representative data and the
/// fastest is selected for the rest of the run. Selections are cached in a
/// process-wide table so identical keys tune exactly once per process, and —
/// when the FELIS_TUNE_CACHE environment variable names a file — persisted
/// across processes so campaign workers skip re-tuning entirely.
///
/// The tuner only ever *selects among bitwise-identical variants* (see
/// field/tensor_simd.hpp), so its timing nondeterminism never perturbs
/// results; it is also why a stale persisted winner is harmless.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace felis::device {

struct TuneCandidate {
  std::string name;
  std::function<void()> run;
};

struct TuneResult {
  usize best_index = 0;
  std::vector<double> seconds;  ///< best-of-reps time per candidate (empty
                                ///< when the winner came from the cache)
  bool from_cache = false;      ///< true: no candidate was timed
};

/// Time each candidate `reps` times (after one warmup) and return the index
/// of the fastest along with all timings. `reps` must be >= 1: with zero
/// repetitions no timing would ever be recorded and candidate 0 would win on
/// its +inf sentinel.
TuneResult autotune(const std::vector<TuneCandidate>& candidates, int reps = 3);

/// Identity of one tuning decision. `n` is the kernel's size parameter
/// (nodes per direction for the tensor kernels); `backend`/`threads` pin the
/// execution environment the timing was taken in.
struct TuneKey {
  std::string kernel;
  int n = 0;
  std::string backend;
  int threads = 1;

  bool operator<(const TuneKey& o) const {
    if (kernel != o.kernel) return kernel < o.kernel;
    if (n != o.n) return n < o.n;
    if (backend != o.backend) return backend < o.backend;
    return threads < o.threads;
  }
  std::string to_string() const;
};

/// Process-wide winner table. Thread-safe; keys tune once. When
/// FELIS_TUNE_CACHE names a file, the table is seeded from it on first use
/// and rewritten after every fresh tune (plain text, one
/// `kernel n backend threads winner best_seconds` line per key; a torn file
/// only costs a re-tune, so no atomic-rename machinery is needed here).
class TuneCache {
 public:
  static TuneCache& instance();

  /// Tune-or-fetch: if `key` has a cached winner whose name matches one of
  /// `candidates`, return it without running anything (from_cache = true);
  /// otherwise run `autotune(candidates, reps)`, record the winner and
  /// persist it.
  TuneResult tune(const TuneKey& key,
                  const std::vector<TuneCandidate>& candidates, int reps = 3);

  /// Cached winner name for `key`, or "" when the key is unknown.
  std::string lookup(const TuneKey& key);

  /// Record an externally decided winner (also persists).
  void record(const TuneKey& key, const std::string& winner,
              double best_seconds);

  /// Number of cached keys.
  usize size();

  /// Drop every entry and forget that the persisted file was loaded (tests).
  void clear();

 private:
  TuneCache() = default;
  void load_file_locked();
  void save_file_locked();

  struct Entry {
    std::string winner;
    double seconds = 0;
  };
  std::mutex mutex_;
  std::map<TuneKey, Entry> table_;
  bool file_loaded_ = false;
};

}  // namespace felis::device
