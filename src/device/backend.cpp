/// \file backend.cpp
#include "device/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/logger.hpp"
#include "common/params.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

// libgomp's barriers are invisible to TSan, so every `#pragma omp parallel`
// produces false positives. Under TSan the OpenMpBackend dispatches through a
// plain std::thread pool instead (same blocked contract, same results), which
// TSan instruments end to end — real kernel races are still caught, runtime
// ones are not invented. The same pool serves builds without OpenMP.
#if defined(__SANITIZE_THREAD__)
#define FELIS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FELIS_TSAN_BUILD 1
#endif
#endif
#ifndef FELIS_TSAN_BUILD
#define FELIS_TSAN_BUILD 0
#endif

namespace felis::device {

namespace {

constexpr int kMaxComponents = 8;  ///< widest multi-component reduction

/// Blocks per worker when the caller lets the backend pick the grain; > 1 so
/// uneven chunk costs (e.g. boundary elements) still balance.
constexpr lidx_t kAutoBlocksPerWorker = 4;

lidx_t block_count(lidx_t n, lidx_t grain) { return (n + grain - 1) / grain; }

#if !defined(_OPENMP) || FELIS_TSAN_BUILD

int env_thread_count() {
  // Manual OMP_NUM_THREADS parse for the std::thread fallback path, so the
  // TSan build honors the same knob as the real OpenMP runtime.
  if (const char* env = std::getenv("OMP_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Work-stealing chunk dispatch on a transient std::thread pool. Workers pull
/// block indices off a shared atomic counter; the first exception is captured
/// and rethrown on the calling thread after the join.
void pool_dispatch(lidx_t n, lidx_t grain, lidx_t nblocks, int nthreads,
                   const RangeFn& fn) {
  std::atomic<lidx_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto work = [&](int worker) {
    try {
      for (;;) {
        const lidx_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= nblocks || failed.load(std::memory_order_relaxed)) break;
        fn(b * grain, std::min<lidx_t>(n, (b + 1) * grain), worker);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<usize>(nthreads - 1));
  for (int w = 1; w < nthreads; ++w) workers.emplace_back(work, w);
  work(0);
  for (std::thread& t : workers) t.join();
  if (error) std::rethrow_exception(error);
}

#endif  // !defined(_OPENMP) || FELIS_TSAN_BUILD

}  // namespace

// ---- Backend conveniences ---------------------------------------------------

void Backend::parallel_for(lidx_t n, const IndexFn& fn) {
  parallel_for_blocked(n, /*grain=*/0,
                       [&fn](lidx_t begin, lidx_t end, int /*worker*/) {
                         for (lidx_t i = begin; i < end; ++i) fn(i);
                       });
}

void Backend::reduce_sum(lidx_t n, int ncomp, real_t* out,
                         const PartialSumFn& fn, lidx_t grain) {
  FELIS_CHECK(ncomp >= 1 && ncomp <= kMaxComponents);
  FELIS_CHECK(grain > 0);
  std::fill(out, out + ncomp, real_t{0});
  if (n <= 0) return;
  const lidx_t nblocks = block_count(n, grain);
  // Per-block partials land in fixed slots, then combine in ascending block
  // order: the FP association depends only on (n, grain), never on the
  // backend or thread count.
  std::vector<real_t> partials(static_cast<usize>(nblocks) * ncomp, real_t{0});
  parallel_for_blocked(
      nblocks, /*grain=*/0, [&](lidx_t bbegin, lidx_t bend, int /*worker*/) {
        for (lidx_t b = bbegin; b < bend; ++b) {
          fn(b * grain, std::min<lidx_t>(n, (b + 1) * grain),
             partials.data() + static_cast<usize>(b) * ncomp);
        }
      });
  for (lidx_t b = 0; b < nblocks; ++b) {
    for (int c = 0; c < ncomp; ++c) {
      out[c] += partials[static_cast<usize>(b) * ncomp + c];
    }
  }
}

real_t Backend::reduce_sum(lidx_t n, const SpanFn& fn, lidx_t grain) {
  FELIS_CHECK(grain > 0);
  if (n <= 0) return real_t{0};
  const lidx_t nblocks = block_count(n, grain);
  std::vector<real_t> partials(static_cast<usize>(nblocks), real_t{0});
  parallel_for_blocked(
      nblocks, /*grain=*/0, [&](lidx_t bbegin, lidx_t bend, int /*worker*/) {
        for (lidx_t b = bbegin; b < bend; ++b) {
          partials[static_cast<usize>(b)] =
              fn(b * grain, std::min<lidx_t>(n, (b + 1) * grain));
        }
      });
  real_t sum = 0;
  for (const real_t p : partials) sum += p;
  return sum;
}

real_t Backend::reduce_max(lidx_t n, const SpanFn& fn, lidx_t grain) {
  FELIS_CHECK(grain > 0);
  real_t result = -std::numeric_limits<real_t>::infinity();
  if (n <= 0) return result;
  const lidx_t nblocks = block_count(n, grain);
  std::vector<real_t> partials(static_cast<usize>(nblocks),
                               -std::numeric_limits<real_t>::infinity());
  parallel_for_blocked(
      nblocks, /*grain=*/0, [&](lidx_t bbegin, lidx_t bend, int /*worker*/) {
        for (lidx_t b = bbegin; b < bend; ++b) {
          partials[static_cast<usize>(b)] =
              fn(b * grain, std::min<lidx_t>(n, (b + 1) * grain));
        }
      });
  for (const real_t p : partials) result = std::max(result, p);
  return result;
}

// ---- SerialBackend ----------------------------------------------------------

void SerialBackend::parallel_for_blocked(lidx_t n, lidx_t grain,
                                         const RangeFn& fn) {
  if (n <= 0) return;
  if (grain <= 0) {
    fn(0, n, 0);  // one chunk: a backend-dispatched kernel is one plain loop
    return;
  }
  const lidx_t nblocks = block_count(n, grain);
  for (lidx_t b = 0; b < nblocks; ++b) {
    fn(b * grain, std::min<lidx_t>(n, (b + 1) * grain), 0);
  }
}

// ---- OpenMpBackend ----------------------------------------------------------

int OpenMpBackend::concurrency() const {
  if (num_threads_ > 0) return num_threads_;
#if defined(_OPENMP) && !FELIS_TSAN_BUILD
  return std::max(1, omp_get_max_threads());
#else
  return env_thread_count();
#endif
}

void OpenMpBackend::parallel_for_blocked(lidx_t n, lidx_t grain,
                                         const RangeFn& fn) {
  if (n <= 0) return;
  const int nthreads = concurrency();
  const lidx_t g =
      grain > 0 ? grain
                : std::max<lidx_t>(1, (n + nthreads * kAutoBlocksPerWorker - 1) /
                                          (nthreads * kAutoBlocksPerWorker));
  const lidx_t nblocks = block_count(n, g);
  if (nthreads <= 1 || nblocks <= 1) {
    for (lidx_t b = 0; b < nblocks; ++b) {
      fn(b * g, std::min<lidx_t>(n, (b + 1) * g), 0);
    }
    return;
  }
#if defined(_OPENMP) && !FELIS_TSAN_BUILD
#pragma omp parallel for schedule(static) num_threads(nthreads)
  for (lidx_t b = 0; b < nblocks; ++b) {
    fn(b * g, std::min<lidx_t>(n, (b + 1) * g), omp_get_thread_num());
  }
#else
  pool_dispatch(n, g, nblocks, nthreads, fn);
#endif
}

// ---- selection --------------------------------------------------------------

namespace {

std::once_flag g_log_once;

void log_choice(const Backend& backend) {
  std::call_once(g_log_once, [&backend] {
    FELIS_LOG_INFO("device: backend=", backend.name(),
                   " threads=", backend.concurrency());
  });
}

Backend& resolve(const std::string& spec) {
  static SerialBackend serial;
  static OpenMpBackend openmp;
  if (spec == "serial") return serial;
  if (spec == "openmp") return openmp;
  if (spec.empty() || spec == "auto") {
    return openmp.concurrency() > 1 ? static_cast<Backend&>(openmp) : serial;
  }
  throw Error("unknown device backend '" + spec +
              "' (expected serial|openmp|auto)");
}

}  // namespace

Backend& backend_by_name(const std::string& name) {
  Backend& backend = resolve(name);
  log_choice(backend);
  return backend;
}

Backend& default_backend() {
  const char* env = std::getenv("FELIS_BACKEND");
  Backend& backend = resolve(env != nullptr ? env : "auto");
  log_choice(backend);
  return backend;
}

Backend& select_backend(const ParamMap& params) {
  if (params.has("device.backend")) {
    return backend_by_name(params.get_string("device.backend"));
  }
  return default_backend();
}

}  // namespace felis::device
