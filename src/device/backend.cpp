#include "device/backend.hpp"

#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace felis::device {

void OpenMpBackend::parallel_for(lidx_t n, const std::function<void(lidx_t)>& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (lidx_t i = 0; i < n; ++i) fn(i);
#else
  for (lidx_t i = 0; i < n; ++i) fn(i);
#endif
}

Backend& default_backend() {
  static SerialBackend serial;
#ifdef _OPENMP
  static OpenMpBackend openmp;
  if (std::thread::hardware_concurrency() > 1) {
    static Backend& chosen = openmp;
    return chosen;
  }
#endif
  return serial;
}

}  // namespace felis::device
