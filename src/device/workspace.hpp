/// \file workspace.hpp
/// \brief Per-thread scratch-buffer arena for backend-dispatched kernels.
///
/// Matrix-free kernels need O(n³) scratch per element (ur/us/ut/…). Member
/// scratch vectors make the kernel objects race under any parallel backend,
/// and per-call allocation costs more than small-element kernels themselves.
/// Instead every OS thread owns one lazily grown arena of reusable buffers,
/// and kernels carve scratch out of it through stack-ordered frames:
///
///   backend.parallel_for_blocked(nelem, 0, [&](lidx_t e0, lidx_t e1, int) {
///     device::WorkspaceFrame scratch;
///     RealVec& ur = scratch.vec(nxyz);   // thread-private, stable address
///     for (lidx_t e = e0; e < e1; ++e) { ... }
///   });                                  // frame pops, buffers stay cached
///
/// Ownership discipline: a buffer belongs to the frame that obtained it, on
/// the thread that obtained it — never store it beyond the frame's scope and
/// never hand it to another thread. Frames nest LIFO (a kernel calling
/// another backend-dispatched kernel works: the serial backend runs chunks on
/// the calling thread, parallel backends run them on pool threads with their
/// own arenas). The arena is keyed by OS thread, not by worker slot, because
/// concurrently active dispatches (e.g. the task-overlapped coarse solve on a
/// device::Stream thread beside the fine Schwarz sweep) would alias worker
/// indices but always occupy disjoint OS threads.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace felis::device {

/// One thread's scratch arena: a stack of reusable RealVec buffers plus a
/// cursor. Not thread-safe by design — access it only through mine().
class Workspace {
 public:
  /// The calling thread's arena (thread_local, created on first use).
  static Workspace& mine();

  /// Buffers ever allocated by this thread (monitoring/tests).
  usize buffers_allocated() const { return buffers_.size(); }

  /// Buffers currently claimed by live frames (monitoring/tests).
  usize depth() const { return cursor_; }

  /// Bytes of buffer capacity currently held across *all* threads' arenas,
  /// and the process-lifetime high-water mark. Grows monotonically (arenas
  /// cache buffers until thread exit); the telemetry layer samples these into
  /// the `device.arena_*` gauges each step.
  static usize process_bytes() {
    return process_bytes_.load(std::memory_order_relaxed);
  }
  static usize process_high_water() {
    return process_high_water_.load(std::memory_order_relaxed);
  }

 private:
  friend class WorkspaceFrame;
  Workspace() = default;
  ~Workspace();

  static void charge_growth(usize grown_bytes);

  static std::atomic<usize> process_bytes_;
  static std::atomic<usize> process_high_water_;

  std::vector<std::unique_ptr<RealVec>> buffers_;  ///< unique_ptr: stable addresses
  usize cursor_ = 0;
  usize bytes_ = 0;  ///< capacity bytes this arena has charged to the process
};

/// RAII view onto the calling thread's Workspace. Buffers obtained through
/// vec() stay valid until the frame is destroyed, then return to the arena
/// for reuse. Contents are NOT zeroed — kernels must fully overwrite.
class WorkspaceFrame {
 public:
  WorkspaceFrame() : workspace_(Workspace::mine()), mark_(workspace_.cursor_) {}
  ~WorkspaceFrame();
  WorkspaceFrame(const WorkspaceFrame&) = delete;
  WorkspaceFrame& operator=(const WorkspaceFrame&) = delete;

  /// A thread-private buffer resized to n elements (unspecified contents).
  RealVec& vec(usize n);

 private:
  Workspace& workspace_;
  usize mark_;  ///< arena cursor at frame entry, restored at destruction
};

}  // namespace felis::device
