/// \file stream.hpp
/// \brief Execution streams: ordered asynchronous task queues.
///
/// The paper's task-parallel preconditioner launches "the left and the right
/// part of (3) in parallel on the device [...] from different threads in an
/// OpenMP parallel region. Tasks are launched in separate streams to allow
/// overlap" (§5.3). felis' `Stream` is the host-side equivalent: a dedicated
/// worker thread draining an ordered task queue. Work submitted to different
/// streams runs concurrently; work within a stream is ordered — the same
/// semantics as CUDA/HIP streams.
///
/// `priority` is advisory metadata (mirrors cudaStreamCreateWithPriority):
/// the discrete-event simulator in perfmodel/ honours it exactly the way the
/// paper describes for NVIDIA vs AMD scheduling; the host implementation
/// relies on OS scheduling.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/types.hpp"

namespace felis::device {

class Stream {
 public:
  explicit Stream(int priority = 0);
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue a task; returns immediately (asynchronous launch).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait();

  int priority() const { return priority_; }

 private:
  void worker_loop();

  int priority_;
  std::mutex mutex_;
  std::condition_variable cv_submit_;
  std::condition_variable cv_done_;
  std::deque<std::function<void()>> queue_;
  bool running_ = false;   ///< a task is currently executing
  bool shutdown_ = false;
  std::thread worker_;
};

/// Timestamped task trace across streams — the data behind Fig. 2's timeline
/// view. Recorded by the preconditioners and rendered by bench_fig2_overlap.
struct TraceEvent {
  int stream = 0;           ///< 0 = fine/default stream, 1 = coarse stream
  std::string name;
  double t_begin = 0;       ///< seconds since trace start
  double t_end = 0;
};

class TraceRecorder {
 public:
  void start();
  /// Rebase the trace clock onto an externally owned epoch so intervals
  /// recorded here land on the same timeline as other recorders sharing that
  /// epoch (the telemetry layer aligns the Profiler timeline this way).
  void start_at(std::chrono::steady_clock::time_point epoch);
  /// Record an interval on a stream; thread-safe.
  void record(int stream, const std::string& name, double t_begin, double t_end);
  /// Convenience: run fn() and record its wall time.
  void timed(int stream, const std::string& name, const std::function<void()>& fn);

  double now() const;  ///< seconds since start()
  std::vector<TraceEvent> events() const;
  void clear();

  /// Render an ASCII timeline (one row per stream), Fig. 2 style.
  std::string render(int width = 100) const;

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
  std::vector<TraceEvent> events_;
};

}  // namespace felis::device
