/// \file workspace.cpp
#include "device/workspace.hpp"

namespace felis::device {

std::atomic<usize> Workspace::process_bytes_{0};
std::atomic<usize> Workspace::process_high_water_{0};

Workspace& Workspace::mine() {
  static thread_local Workspace workspace;
  return workspace;
}

Workspace::~Workspace() {
  process_bytes_.fetch_sub(bytes_, std::memory_order_relaxed);
}

void Workspace::charge_growth(usize grown_bytes) {
  const usize total =
      process_bytes_.fetch_add(grown_bytes, std::memory_order_relaxed) +
      grown_bytes;
  usize high = process_high_water_.load(std::memory_order_relaxed);
  while (total > high && !process_high_water_.compare_exchange_weak(
                             high, total, std::memory_order_relaxed)) {
  }
}

WorkspaceFrame::~WorkspaceFrame() {
  // Frames are strictly LIFO on one thread, so every buffer claimed past
  // mark_ belongs to this frame (or to frames nested inside it, already
  // destroyed); popping the cursor releases exactly those buffers.
  workspace_.cursor_ = mark_;
}

RealVec& WorkspaceFrame::vec(usize n) {
  if (workspace_.cursor_ == workspace_.buffers_.size()) {
    workspace_.buffers_.push_back(std::make_unique<RealVec>());
  }
  RealVec& buffer = *workspace_.buffers_[workspace_.cursor_++];
  const usize old_capacity = buffer.capacity();
  buffer.resize(n);  // shrink keeps capacity; grow reuses it across calls
  if (buffer.capacity() > old_capacity) {
    const usize grown = (buffer.capacity() - old_capacity) * sizeof(real_t);
    workspace_.bytes_ += grown;
    Workspace::charge_growth(grown);
  }
  return buffer;
}

}  // namespace felis::device
