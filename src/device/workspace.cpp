/// \file workspace.cpp
#include "device/workspace.hpp"

namespace felis::device {

Workspace& Workspace::mine() {
  static thread_local Workspace workspace;
  return workspace;
}

WorkspaceFrame::~WorkspaceFrame() {
  // Frames are strictly LIFO on one thread, so every buffer claimed past
  // mark_ belongs to this frame (or to frames nested inside it, already
  // destroyed); popping the cursor releases exactly those buffers.
  workspace_.cursor_ = mark_;
}

RealVec& WorkspaceFrame::vec(usize n) {
  if (workspace_.cursor_ == workspace_.buffers_.size()) {
    workspace_.buffers_.push_back(std::make_unique<RealVec>());
  }
  RealVec& buffer = *workspace_.buffers_[workspace_.cursor_++];
  buffer.resize(n);  // shrink keeps capacity; grow reuses it across calls
  return buffer;
}

}  // namespace felis::device
