#include "device/autotune.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logger.hpp"

namespace felis::device {

TuneResult autotune(const std::vector<TuneCandidate>& candidates, int reps) {
  FELIS_CHECK_MSG(!candidates.empty(), "autotune: no candidates");
  // reps < 1 would leave every candidate at the 1e300 sentinel and silently
  // crown candidate 0; refuse instead of recording garbage timings.
  FELIS_CHECK_MSG(reps >= 1, "autotune: reps must be >= 1, got " << reps);
  TuneResult result;
  result.seconds.resize(candidates.size());
  using Clock = std::chrono::steady_clock;
  for (usize c = 0; c < candidates.size(); ++c) {
    candidates[c].run();  // warmup
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      candidates[c].run();
      const double dt =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (dt < best) best = dt;
    }
    result.seconds[c] = best;
    if (best < result.seconds[result.best_index]) result.best_index = c;
  }
  return result;
}

std::string TuneKey::to_string() const {
  std::ostringstream os;
  os << kernel << "/n" << n << "/" << backend << "/" << threads;
  return os.str();
}

TuneCache& TuneCache::instance() {
  static TuneCache cache;
  return cache;
}

TuneResult TuneCache::tune(const TuneKey& key,
                           const std::vector<TuneCandidate>& candidates,
                           int reps) {
  FELIS_CHECK_MSG(!candidates.empty(),
                  "autotune: no candidates for " << key.to_string());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_loaded_) load_file_locked();
    const auto it = table_.find(key);
    if (it != table_.end()) {
      for (usize c = 0; c < candidates.size(); ++c) {
        if (candidates[c].name == it->second.winner) {
          TuneResult cached;
          cached.best_index = c;
          cached.from_cache = true;
          return cached;
        }
      }
      // A persisted winner naming no current candidate (stale cache after a
      // variant rename) falls through to a fresh tune below.
    }
  }
  const TuneResult fresh = autotune(candidates, reps);
  record(key, candidates[fresh.best_index].name,
         fresh.seconds[fresh.best_index]);
  FELIS_LOG_DEBUG("autotune: ", key.to_string(), " -> ",
                  candidates[fresh.best_index].name);
  return fresh;
}

std::string TuneCache::lookup(const TuneKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!file_loaded_) load_file_locked();
  const auto it = table_.find(key);
  return it != table_.end() ? it->second.winner : std::string();
}

void TuneCache::record(const TuneKey& key, const std::string& winner,
                       double best_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!file_loaded_) load_file_locked();
  table_[key] = Entry{winner, best_seconds};
  save_file_locked();
}

usize TuneCache::size() {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

void TuneCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  table_.clear();
  file_loaded_ = false;
}

void TuneCache::load_file_locked() {
  file_loaded_ = true;
  const char* path = std::getenv("FELIS_TUNE_CACHE");
  if (path == nullptr || *path == '\0') return;
  std::ifstream in(path);
  if (!in) return;  // first run: the file appears after the first tune
  std::string line;
  usize loaded = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TuneKey key;
    Entry entry;
    if (ls >> key.kernel >> key.n >> key.backend >> key.threads >>
        entry.winner >> entry.seconds) {
      table_[key] = entry;
      ++loaded;
    }
    // Malformed lines (torn tail from a crashed writer) are skipped: the
    // worst case is one redundant re-tune.
  }
  if (loaded > 0)
    FELIS_LOG_DEBUG("autotune: loaded ", loaded, " cached winner(s) from ",
                    path);
}

void TuneCache::save_file_locked() {
  const char* path = std::getenv("FELIS_TUNE_CACHE");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    FELIS_LOG_WARN("autotune: cannot write FELIS_TUNE_CACHE file ", path);
    return;
  }
  out << "# felis autotune cache: kernel n backend threads winner seconds\n";
  for (const auto& [key, entry] : table_) {
    out << key.kernel << ' ' << key.n << ' ' << key.backend << ' '
        << key.threads << ' ' << entry.winner << ' ' << entry.seconds << '\n';
  }
}

}  // namespace felis::device
