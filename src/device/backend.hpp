/// \file backend.hpp
/// \brief Compute-backend abstraction (the device abstraction layer).
///
/// Neko "uses a device abstraction layer to manage device memory, data
/// transfer and kernel launches from Fortran. Behind this interface, Neko
/// calls the native accelerator implementation" (§5.1). In this CPU-only
/// reproduction the layer dispatches element loops and vector kernels to a
/// serial or an OpenMP backend; solver code never references a concrete
/// backend, so adding one (as Neko adds CUDA/HIP/OpenCL) touches nothing
/// above this interface.
///
/// Dispatch is *blocked*: callbacks receive contiguous index ranges, never a
/// per-index std::function call, so the serial backend runs a kernel as one
/// plain loop (zero abstraction overhead) and parallel backends amortize the
/// dispatch over whole chunks. Reductions are deterministic by construction:
/// every backend partitions the index space into the same fixed-size blocks
/// and combines the block partials in ascending block order, so dots, norms
/// and CFL numbers are bitwise identical for every backend and thread count.
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"

namespace felis {
class ParamMap;
}  // namespace felis

namespace felis::device {

/// Chunk callback: one contiguous index range [begin, end) plus the worker
/// slot (in [0, concurrency())) executing it. Chunks may run concurrently;
/// the callback must only write data disjoint per index or per chunk, and
/// must not throw (an exception escaping a parallel region is fatal).
using RangeFn = std::function<void(lidx_t begin, lidx_t end, int worker)>;

/// Per-index convenience callback (tests, setup-time loops).
using IndexFn = std::function<void(lidx_t i)>;

/// Reduction block callback: accumulate the contribution of [begin, end)
/// into acc[0..ncomp) (acc is zero-initialized per block).
using PartialSumFn = std::function<void(lidx_t begin, lidx_t end, real_t* acc)>;

/// Single-value reduction block callback: return the partial over [begin, end).
using SpanFn = std::function<real_t(lidx_t begin, lidx_t end)>;

/// Fixed block length of the deterministic reductions. Independent of the
/// backend and thread count on purpose: the block partition *is* the
/// floating-point association, so changing it changes results.
inline constexpr lidx_t kReduceGrain = 2048;

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string name() const = 0;

  /// Number of worker slots chunk callbacks may occupy concurrently (>= 1).
  virtual int concurrency() const = 0;

  /// Dispatch fn over [0, n) in contiguous blocks.
  ///
  /// grain > 0: exactly ceil(n/grain) blocks, block b covering
  /// [b*grain, min(n, (b+1)*grain)) — the same partition on every backend
  /// (this is what the deterministic reductions build on).
  /// grain <= 0: the backend picks a block size for load balance; the serial
  /// backend then makes a single call fn(0, n, 0).
  virtual void parallel_for_blocked(lidx_t n, lidx_t grain,
                                    const RangeFn& fn) = 0;

  // ---- conveniences built on the virtual dispatch ---------------------------

  /// Execute fn(i) for i in [0, n); iterations may run concurrently, so fn
  /// must only write disjoint per-i data.
  void parallel_for(lidx_t n, const IndexFn& fn);

  /// Deterministic ncomp-component sum over [0, n): block partials (each a
  /// serial in-order accumulation) combined in ascending block order.
  /// out[0..ncomp) is overwritten.
  void reduce_sum(lidx_t n, int ncomp, real_t* out, const PartialSumFn& fn,
                  lidx_t grain = kReduceGrain);

  /// Deterministic single sum over [0, n).
  real_t reduce_sum(lidx_t n, const SpanFn& fn, lidx_t grain = kReduceGrain);

  /// Max over [0, n) (max is associative and commutative, so this is exact
  /// for any partition); identity is -inf, so n == 0 returns -inf.
  real_t reduce_max(lidx_t n, const SpanFn& fn, lidx_t grain = kReduceGrain);
};

/// Runs every chunk on the calling thread, in ascending block order.
class SerialBackend final : public Backend {
 public:
  std::string name() const override { return "serial"; }
  int concurrency() const override { return 1; }
  void parallel_for_blocked(lidx_t n, lidx_t grain, const RangeFn& fn) override;
};

/// Chunks dispatched across OpenMP worker threads. `num_threads == 0` means
/// the runtime default (OMP_NUM_THREADS or the hardware concurrency).
///
/// Under ThreadSanitizer the OpenMP runtime (libgomp) is not instrumented and
/// its barriers are invisible to TSan, so this backend transparently switches
/// to an equivalent std::thread worker pool — same blocked contract, same
/// results — which TSan can verify end to end. The same pool serves builds
/// without OpenMP support.
class OpenMpBackend final : public Backend {
 public:
  explicit OpenMpBackend(int num_threads = 0) : num_threads_(num_threads) {}
  std::string name() const override { return "openmp"; }
  int concurrency() const override;
  void parallel_for_blocked(lidx_t n, lidx_t grain, const RangeFn& fn) override;

 private:
  int num_threads_ = 0;  ///< 0 = runtime default
};

/// Shared backend instance by name: "serial", "openmp", or "auto" (OpenMP
/// when more than one thread is available, serial otherwise). Throws
/// felis::Error on anything else. Logs the first process-wide choice.
Backend& backend_by_name(const std::string& name);

/// Process-default backend: the FELIS_BACKEND environment variable
/// (serial|openmp|auto) when set, otherwise "auto". The chosen backend and
/// its thread count are logged once per process via the Logger.
Backend& default_backend();

/// Params-driven selection: the "device.backend" key when present, otherwise
/// default_backend(). This is what case drivers pass to make_rank_setup so
/// the whole solver stack picks the backend up from the case file.
Backend& select_backend(const ParamMap& params);

}  // namespace felis::device
