/// \file backend.hpp
/// \brief Compute-backend abstraction (the device abstraction layer).
///
/// Neko "uses a device abstraction layer to manage device memory, data
/// transfer and kernel launches from Fortran. Behind this interface, Neko
/// calls the native accelerator implementation" (§5.1). In this CPU-only
/// reproduction the layer dispatches element loops to a serial or an OpenMP
/// backend; solver code never references a concrete backend, so adding one
/// (as Neko adds CUDA/HIP/OpenCL) touches nothing above this interface.
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"

namespace felis::device {

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string name() const = 0;
  /// Execute fn(i) for i in [0, n); implementations may run iterations
  /// concurrently, so fn must only write disjoint per-i data.
  virtual void parallel_for(lidx_t n, const std::function<void(lidx_t)>& fn) = 0;
};

class SerialBackend final : public Backend {
 public:
  std::string name() const override { return "serial"; }
  void parallel_for(lidx_t n, const std::function<void(lidx_t)>& fn) override {
    for (lidx_t i = 0; i < n; ++i) fn(i);
  }
};

class OpenMpBackend final : public Backend {
 public:
  std::string name() const override { return "openmp"; }
  void parallel_for(lidx_t n, const std::function<void(lidx_t)>& fn) override;
};

/// Process-default backend: OpenMP when compiled in and more than one
/// hardware thread is available, serial otherwise.
Backend& default_backend();

}  // namespace felis::device
