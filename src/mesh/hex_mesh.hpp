/// \file hex_mesh.hpp
/// \brief Conforming hexahedral meshes with analytic element mappings.
///
/// The paper's RBC runs use a carefully designed mesh of a cylindrical cell
/// (108M elements at production scale) with near-wall refinement at the
/// plates and the side wall (§6). felis provides two generators:
///
///  * `make_box_mesh`      — structured brick mesh of an axis-aligned box with
///    per-direction grading and optional periodicity (used for validation
///    cases: Taylor–Green decay, RBC onset in a periodic slab);
///  * `make_cylinder_mesh` — cylindrical cell of radius R and height H with a
///    classic o-grid disk: a straight central square block surrounded by ring
///    layers whose elements blend analytically between the square boundary
///    and circular arcs (felis' equivalent of Nek-style Gordon–Hall curved
///    side walls). Neighbouring curved elements evaluate shared edges at
///    identical parameters, so the geometry is exactly conforming, and the
///    blend Jacobian is nonsingular everywhere (a global square→disk map
///    would degenerate at the square's corners).
///
/// Element-local node coordinates are *generated on demand* from per-element
/// `ElementMap` data; the mesh never stores per-GLL-node coordinates.
#pragma once

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace felis::mesh {

/// Boundary condition tags attached to element faces.
enum class FaceTag : int {
  kInterior = 0,
  kWall = 1,        ///< no-slip wall (generic)
  kBottom = 2,      ///< heated plate z = 0
  kTop = 3,         ///< cooled plate z = H
  kSide = 4,        ///< cylinder side wall / box lateral wall
  kPeriodic = 5,    ///< periodically identified (no BC applied)
};

/// 3-vector of coordinates.
using Point = std::array<real_t, 3>;

/// Analytic mapping from the reference cube [-1,1]³ to one element.
struct ElementMap {
  enum class Kind { kTrilinear, kDiskRing };
  Kind kind = Kind::kTrilinear;

  /// kTrilinear: physical corner coordinates in lexicographic order
  /// (i fastest): index = i + 2j + 4k for (i,j,k) ∈ {0,1}³.
  std::array<Point, 8> corners{};

  /// kDiskRing: one o-grid ring sector. The element covers [xi0,xi1] along
  /// `side` of the central square (counter-clockwise parameter ξ ∈ [0,1] per
  /// side), blend fractions [f0,f1] between the square boundary (f=0) and
  /// the circle of the given radius (f=1), and [z0,z1] in height. `half` is
  /// the central square's half-width.
  int side = 0;
  real_t xi0 = 0, xi1 = 0, f0 = 0, f1 = 0, z0 = 0, z1 = 0;
  real_t radius = 1, half = 0.5;

  /// Map reference coordinates (r,s,t) ∈ [-1,1]³ to physical space.
  Point map(real_t r, real_t s, real_t t) const;
};

/// Local face numbering on the reference cube (lexicographic local axes):
/// face 0: r=-1, 1: r=+1, 2: s=-1, 3: s=+1, 4: t=-1, 5: t=+1.
inline constexpr int kFacesPerElement = 6;

/// Vertex ids (into the element's 8 corners) of each face, ordered so that
/// the face's own 2-D lexicographic frame is (first varying axis, second
/// varying axis): entries are {c00, c10, c01, c11}.
std::array<int, 4> face_corners(int face);

/// A conforming hexahedral mesh. Vertex ids are global and shared between
/// elements; periodic identification is expressed by elements referencing
/// the same vertex ids across the periodic boundary (geometry stays
/// per-element via ElementMap, so coordinates remain correct).
class HexMesh {
 public:
  /// Number of elements.
  lidx_t num_elements() const { return static_cast<lidx_t>(elements_.size()); }
  /// Number of distinct vertices (after periodic identification).
  gidx_t num_vertices() const { return num_vertices_; }

  const std::array<gidx_t, 8>& element_vertices(lidx_t e) const {
    return elements_[static_cast<usize>(e)];
  }
  const ElementMap& element_map(lidx_t e) const { return maps_[static_cast<usize>(e)]; }
  FaceTag face_tag(lidx_t e, int face) const {
    return face_tags_[static_cast<usize>(e)][static_cast<usize>(face)];
  }

  /// Element centroid (reference-cube origin mapped to physical space).
  Point centroid(lidx_t e) const { return element_map(e).map(0, 0, 0); }

  /// Mesh construction API (used by generators and tests).
  lidx_t add_element(const std::array<gidx_t, 8>& vertices, const ElementMap& map,
                     const std::array<FaceTag, 6>& tags);
  void set_num_vertices(gidx_t n) { num_vertices_ = n; }

 private:
  std::vector<std::array<gidx_t, 8>> elements_;
  std::vector<ElementMap> maps_;
  std::vector<std::array<FaceTag, 6>> face_tags_;
  gidx_t num_vertices_ = 0;
};

/// 1-D grid point distributions used for element boundaries.
enum class Grading {
  kUniform,
  kChebyshev,   ///< clustered toward both ends (wall refinement at plates)
  kGeometric,   ///< clustered toward both ends with a fixed ratio
};

/// n+1 points spanning [a,b] for n elements with the requested grading.
RealVec grid_points(int n, real_t a, real_t b, Grading grading,
                    real_t geometric_ratio = 1.3);

struct BoxMeshConfig {
  int nx = 4, ny = 4, nz = 4;
  real_t lx = 1, ly = 1, lz = 1;
  bool periodic_x = false, periodic_y = false, periodic_z = false;
  Grading grading_z = Grading::kUniform;
  /// Tags used for non-periodic boundaries.
  FaceTag tag_xlo = FaceTag::kSide, tag_xhi = FaceTag::kSide;
  FaceTag tag_ylo = FaceTag::kSide, tag_yhi = FaceTag::kSide;
  FaceTag tag_zlo = FaceTag::kBottom, tag_zhi = FaceTag::kTop;
};

/// Structured brick mesh of [0,lx]×[0,ly]×[0,lz]. Periodic directions
/// require at least 3 elements (so that topological face keys stay unique).
HexMesh make_box_mesh(const BoxMeshConfig& config);

struct CylinderMeshConfig {
  int nc = 2;             ///< central-square elements per side
  int nr = 2;             ///< o-grid ring layers
  int nz = 8;             ///< element layers in z
  real_t radius = 0.5;    ///< cylinder radius (paper: Γ = D/H, slender 1:10)
  real_t height = 1.0;    ///< cylinder height (non-dimensional H = 1)
  /// Central square half-width as a fraction of the radius.
  real_t core_fraction = 0.5;
  Grading grading_z = Grading::kChebyshev;   ///< plate refinement
  Grading grading_r = Grading::kGeometric;   ///< side-wall ring refinement

  /// Disk elements per z-layer: nc² + 4·nc·nr.
  int disk_elements() const { return nc * nc + 4 * nc * nr; }
};

/// Cylindrical RBC cell; bottom tagged kBottom, top kTop, side wall kSide.
HexMesh make_cylinder_mesh(const CylinderMeshConfig& config);

}  // namespace felis::mesh
