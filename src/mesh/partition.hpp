/// \file partition.hpp
/// \brief Element partitioning across ranks and per-rank local meshes.
///
/// Neko distributes one MPI rank per logical GPU (§6); felis mirrors this
/// with a recursive-coordinate-bisection (RCB) partitioner over element
/// centroids and a `LocalMesh` holding one rank's elements together with the
/// global GLL node ids the gather–scatter needs.
///
/// The global numbering is built serially and scattered (a production code
/// numbers in parallel; the result — and everything downstream — is
/// identical, see DESIGN.md §1).
#pragma once

#include <vector>

#include "mesh/hex_mesh.hpp"
#include "mesh/numbering.hpp"

namespace felis::mesh {

/// rank[e] for every element; ranks are balanced to ±1 element.
std::vector<int> partition_rcb(const HexMesh& mesh, int nranks);

/// One rank's portion of the mesh: self-contained copies of element data
/// (maps, tags, vertex ids) plus the global node ids of its GLL nodes.
struct LocalMesh {
  int degree = 0;
  gidx_t num_global_nodes = 0;  ///< global count (same on all ranks)
  std::vector<gidx_t> element_gids;              ///< global element ids
  std::vector<ElementMap> maps;
  std::vector<std::array<FaceTag, 6>> face_tags;
  std::vector<std::array<gidx_t, 8>> element_vertices;
  std::vector<gidx_t> node_ids;  ///< per local element × (N+1)³

  lidx_t num_elements() const { return static_cast<lidx_t>(maps.size()); }
  lidx_t nodes_per_element() const {
    const lidx_t n = degree + 1;
    return n * n * n;
  }
  lidx_t num_local_dofs() const { return num_elements() * nodes_per_element(); }

  gidx_t node_id(lidx_t e, lidx_t local) const {
    return node_ids[static_cast<usize>(e) * static_cast<usize>(nodes_per_element()) +
                    static_cast<usize>(local)];
  }
};

/// Extract rank-local meshes given a partition assignment.
std::vector<LocalMesh> split_mesh(const HexMesh& mesh,
                                  const GlobalNumbering& numbering,
                                  const std::vector<int>& element_rank,
                                  int nranks);

/// Convenience: build numbering, partition with RCB and split.
std::vector<LocalMesh> distribute_mesh(const HexMesh& mesh, int degree,
                                       int nranks);

}  // namespace felis::mesh
