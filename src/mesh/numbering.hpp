/// \file numbering.hpp
/// \brief Global numbering of GLL nodes on a conforming hex mesh.
///
/// The continuity of the spectral-element function space is encoded by
/// assigning one global id to every distinct GLL node; nodes on shared
/// vertices/edges/faces of neighbouring elements receive the same id. The
/// gather–scatter operator (gs/) is built purely from these ids.
///
/// The numbering is *topological* (derived from vertex ids, never from
/// coordinates), so periodic meshes — where coincident ids represent
/// physically distant points — work unchanged.
///
/// Identification rules for a node (i,j,k) of element e, n = N+1 nodes/dir:
///  * corner  → id keyed by the global vertex id;
///  * edge    → keyed by the edge's (min,max) vertex ids and the node's step
///              distance from the smaller-id endpoint (GLL points are
///              symmetric, so the step count is orientation-independent);
///  * face    → keyed by the face's smallest-id corner m, its two adjacent
///              corners ordered by id, and the node's step distances from m
///              along those two edges;
///  * interior→ a fresh id per element (never shared).
#pragma once

#include <vector>

#include "mesh/hex_mesh.hpp"

namespace felis::mesh {

struct GlobalNumbering {
  int degree = 0;                 ///< polynomial degree N
  gidx_t num_global_nodes = 0;    ///< number of distinct GLL nodes
  /// node_ids[e * (N+1)³ + (i + n*(j + n*k))] = global id.
  std::vector<gidx_t> node_ids;

  lidx_t nodes_per_element() const {
    const lidx_t n = degree + 1;
    return n * n * n;
  }
  gidx_t id(lidx_t e, int i, int j, int k) const {
    const lidx_t n = degree + 1;
    return node_ids[static_cast<usize>(e) * static_cast<usize>(n * n * n) +
                    static_cast<usize>(i + n * (j + n * k))];
  }
};

/// Build the numbering for polynomial degree N (N >= 1).
GlobalNumbering build_numbering(const HexMesh& mesh, int degree);

}  // namespace felis::mesh
