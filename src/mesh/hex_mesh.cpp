#include "mesh/hex_mesh.hpp"

#include <cmath>

namespace felis::mesh {

Point ElementMap::map(real_t r, real_t s, real_t t) const {
  switch (kind) {
    case Kind::kTrilinear: {
      const real_t wr[2] = {0.5 * (1 - r), 0.5 * (1 + r)};
      const real_t ws[2] = {0.5 * (1 - s), 0.5 * (1 + s)};
      const real_t wt[2] = {0.5 * (1 - t), 0.5 * (1 + t)};
      Point p{0, 0, 0};
      for (int k = 0; k < 2; ++k)
        for (int j = 0; j < 2; ++j)
          for (int i = 0; i < 2; ++i) {
            const real_t w = wr[i] * ws[j] * wt[k];
            const Point& c = corners[static_cast<usize>(i + 2 * j + 4 * k)];
            p[0] += w * c[0];
            p[1] += w * c[1];
            p[2] += w * c[2];
          }
      return p;
    }
    case Kind::kDiskRing: {
      // r → blend fraction f (square boundary → circle), s → in-side
      // parameter ξ, t → z. This axis order keeps the Jacobian positive
      // (outward-radial × counter-clockwise-tangent × ẑ).
      const real_t f = 0.5 * ((1 - r) * f0 + (1 + r) * f1);
      const real_t xi = 0.5 * ((1 - s) * xi0 + (1 + s) * xi1);
      const real_t z = 0.5 * ((1 - t) * z0 + (1 + t) * z1);
      const real_t a = half;
      // Square-boundary point q(ξ) walking counter-clockwise along `side`.
      real_t qx = 0, qy = 0;
      switch (side) {
        case 0: qx = a; qy = -a + 2 * a * xi; break;
        case 1: qx = a - 2 * a * xi; qy = a; break;
        case 2: qx = -a; qy = a - 2 * a * xi; break;
        case 3: qx = -a + 2 * a * xi; qy = -a; break;
        default: throw Error("ElementMap: invalid ring side");
      }
      // Circle point at the matching angle.
      const real_t theta = -0.25 * M_PI + (side + xi) * 0.5 * M_PI;
      const real_t cx = radius * std::cos(theta);
      const real_t cy = radius * std::sin(theta);
      return {(1 - f) * qx + f * cx, (1 - f) * qy + f * cy, z};
    }
  }
  throw Error("ElementMap::map: unknown mapping kind");
}

std::array<int, 4> face_corners(int face) {
  // Corner index = i + 2j + 4k. Faces keep the remaining two axes in
  // lexicographic order as their local (p,q) frame.
  switch (face) {
    case 0: return {0, 2, 4, 6};  // r=-1, frame (s,t)
    case 1: return {1, 3, 5, 7};  // r=+1, frame (s,t)
    case 2: return {0, 1, 4, 5};  // s=-1, frame (r,t)
    case 3: return {2, 3, 6, 7};  // s=+1, frame (r,t)
    case 4: return {0, 1, 2, 3};  // t=-1, frame (r,s)
    case 5: return {4, 5, 6, 7};  // t=+1, frame (r,s)
    default: throw Error("face_corners: face index out of range");
  }
}

lidx_t HexMesh::add_element(const std::array<gidx_t, 8>& vertices,
                            const ElementMap& map,
                            const std::array<FaceTag, 6>& tags) {
  elements_.push_back(vertices);
  maps_.push_back(map);
  face_tags_.push_back(tags);
  return static_cast<lidx_t>(elements_.size()) - 1;
}

RealVec grid_points(int n, real_t a, real_t b, Grading grading,
                    real_t geometric_ratio) {
  FELIS_CHECK(n >= 1 && b > a);
  RealVec pts(static_cast<usize>(n) + 1);
  switch (grading) {
    case Grading::kUniform:
      for (int i = 0; i <= n; ++i)
        pts[static_cast<usize>(i)] = a + (b - a) * i / n;
      break;
    case Grading::kChebyshev:
      // Cosine clustering toward both ends — the classic wall-refined
      // distribution for boundary layers at the plates/side wall.
      for (int i = 0; i <= n; ++i) {
        const real_t xi = 0.5 * (1.0 - std::cos(M_PI * i / n));
        pts[static_cast<usize>(i)] = a + (b - a) * xi;
      }
      break;
    case Grading::kGeometric: {
      // Symmetric geometric clustering: spacings grow by `geometric_ratio`
      // from both ends toward the middle.
      FELIS_CHECK(geometric_ratio > 0);
      RealVec spacing(static_cast<usize>(n));
      for (int i = 0; i < n; ++i) {
        const int d = std::min(i, n - 1 - i);
        spacing[static_cast<usize>(i)] = std::pow(geometric_ratio, d);
      }
      real_t total = 0;
      for (const real_t h : spacing) total += h;
      pts[0] = a;
      for (int i = 0; i < n; ++i)
        pts[static_cast<usize>(i) + 1] =
            pts[static_cast<usize>(i)] + (b - a) * spacing[static_cast<usize>(i)] / total;
      pts[static_cast<usize>(n)] = b;  // exact endpoint despite roundoff
      break;
    }
  }
  return pts;
}

HexMesh make_box_mesh(const BoxMeshConfig& config) {
  const int nx = config.nx, ny = config.ny, nz = config.nz;
  FELIS_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  FELIS_CHECK_MSG(!config.periodic_x || nx >= 3,
                  "periodic x requires at least 3 elements");
  FELIS_CHECK_MSG(!config.periodic_y || ny >= 3,
                  "periodic y requires at least 3 elements");
  FELIS_CHECK_MSG(!config.periodic_z || nz >= 3,
                  "periodic z requires at least 3 elements");

  const RealVec xs = grid_points(nx, 0, config.lx, Grading::kUniform);
  const RealVec ys = grid_points(ny, 0, config.ly, Grading::kUniform);
  const RealVec zs = grid_points(nz, 0, config.lz, config.grading_z);

  // Vertex grid with periodic identification: index wraps in periodic dirs.
  const int vx = config.periodic_x ? nx : nx + 1;
  const int vy = config.periodic_y ? ny : ny + 1;
  const int vz = config.periodic_z ? nz : nz + 1;
  const auto vid = [&](int i, int j, int k) -> gidx_t {
    const int ii = config.periodic_x ? (i % nx) : i;
    const int jj = config.periodic_y ? (j % ny) : j;
    const int kk = config.periodic_z ? (k % nz) : k;
    return static_cast<gidx_t>(ii) +
           static_cast<gidx_t>(vx) *
               (static_cast<gidx_t>(jj) + static_cast<gidx_t>(vy) * kk);
  };

  HexMesh mesh;
  mesh.set_num_vertices(static_cast<gidx_t>(vx) * vy * vz);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        std::array<gidx_t, 8> verts{};
        ElementMap map;
        map.kind = ElementMap::Kind::kTrilinear;
        for (int c = 0; c < 8; ++c) {
          const int ci = i + (c & 1);
          const int cj = j + ((c >> 1) & 1);
          const int ck = k + ((c >> 2) & 1);
          verts[static_cast<usize>(c)] = vid(ci, cj, ck);
          map.corners[static_cast<usize>(c)] = {xs[static_cast<usize>(ci)],
                                                ys[static_cast<usize>(cj)],
                                                zs[static_cast<usize>(ck)]};
        }
        std::array<FaceTag, 6> tags{};
        tags[0] = (i == 0) ? (config.periodic_x ? FaceTag::kPeriodic : config.tag_xlo)
                           : FaceTag::kInterior;
        tags[1] = (i == nx - 1)
                      ? (config.periodic_x ? FaceTag::kPeriodic : config.tag_xhi)
                      : FaceTag::kInterior;
        tags[2] = (j == 0) ? (config.periodic_y ? FaceTag::kPeriodic : config.tag_ylo)
                           : FaceTag::kInterior;
        tags[3] = (j == ny - 1)
                      ? (config.periodic_y ? FaceTag::kPeriodic : config.tag_yhi)
                      : FaceTag::kInterior;
        tags[4] = (k == 0) ? (config.periodic_z ? FaceTag::kPeriodic : config.tag_zlo)
                           : FaceTag::kInterior;
        tags[5] = (k == nz - 1)
                      ? (config.periodic_z ? FaceTag::kPeriodic : config.tag_zhi)
                      : FaceTag::kInterior;
        mesh.add_element(verts, map, tags);
      }
    }
  }
  return mesh;
}

HexMesh make_cylinder_mesh(const CylinderMeshConfig& config) {
  const int nc = config.nc, nr = config.nr, nz = config.nz;
  FELIS_CHECK(nc >= 1 && nr >= 1 && nz >= 1);
  FELIS_CHECK(config.radius > 0 && config.height > 0);
  FELIS_CHECK(config.core_fraction > 0.1 && config.core_fraction < 0.9);

  const real_t a = config.core_fraction * config.radius;  // square half-width
  const RealVec zs = grid_points(nz, 0.0, config.height, config.grading_z);
  // Blend fractions of the ring layers (f=0 square boundary, f=1 wall),
  // clustered by the requested grading for side-wall boundary layers.
  const RealVec fs = grid_points(nr, 0.0, 1.0, config.grading_r);

  // Vertex layout per z-level: the (nc+1)² central grid followed by 4·nc
  // perimeter vertices for each ring layer 1..nr.
  const gidx_t level_stride =
      static_cast<gidx_t>(nc + 1) * (nc + 1) + static_cast<gidx_t>(4 * nc) * nr;
  const auto center_vid = [&](int i, int j, int kz) -> gidx_t {
    return static_cast<gidx_t>(i) + static_cast<gidx_t>(nc + 1) * j +
           level_stride * kz;
  };
  // Perimeter position k ∈ [0, 4nc) at ring layer l ∈ [0, nr]; layer 0
  // coincides with the central square's boundary vertices.
  const auto perim_vid = [&](int k, int l, int kz) -> gidx_t {
    k = ((k % (4 * nc)) + 4 * nc) % (4 * nc);
    if (l == 0) {
      const int s = k / nc, i = k % nc;
      switch (s) {
        case 0: return center_vid(nc, i, kz);
        case 1: return center_vid(nc - i, nc, kz);
        case 2: return center_vid(0, nc - i, kz);
        default: return center_vid(i, 0, kz);
      }
    }
    return static_cast<gidx_t>(nc + 1) * (nc + 1) +
           static_cast<gidx_t>(4 * nc) * (l - 1) + k + level_stride * kz;
  };

  HexMesh mesh;
  mesh.set_num_vertices(level_stride * (nz + 1));

  for (int kz = 0; kz < nz; ++kz) {
    const real_t z0 = zs[static_cast<usize>(kz)];
    const real_t z1 = zs[static_cast<usize>(kz) + 1];
    const std::array<FaceTag, 2> ztags = {
        kz == 0 ? FaceTag::kBottom : FaceTag::kInterior,
        kz == nz - 1 ? FaceTag::kTop : FaceTag::kInterior};

    // Central square block: straight (trilinear) elements on a uniform grid.
    for (int j = 0; j < nc; ++j) {
      for (int i = 0; i < nc; ++i) {
        std::array<gidx_t, 8> verts{};
        ElementMap map;
        map.kind = ElementMap::Kind::kTrilinear;
        for (int c = 0; c < 8; ++c) {
          const int ci = i + (c & 1), cj = j + ((c >> 1) & 1),
                    ck = kz + ((c >> 2) & 1);
          verts[static_cast<usize>(c)] = center_vid(ci, cj, ck);
          map.corners[static_cast<usize>(c)] = {
              a * (2.0 * ci / nc - 1.0), a * (2.0 * cj / nc - 1.0),
              zs[static_cast<usize>(ck)]};
        }
        std::array<FaceTag, 6> tags{};
        tags[4] = ztags[0];
        tags[5] = ztags[1];
        mesh.add_element(verts, map, tags);
      }
    }

    // Ring sectors: blend between the square boundary and circular arcs.
    for (int l = 0; l < nr; ++l) {
      for (int k = 0; k < 4 * nc; ++k) {
        const int side = k / nc;
        const int i = k % nc;
        std::array<gidx_t, 8> verts{};
        // Corner order: bit0 → blend direction (f), bit1 → ξ direction.
        for (int c = 0; c < 8; ++c) {
          const int lf = l + (c & 1);
          const int kk = k + ((c >> 1) & 1);
          const int ck = kz + ((c >> 2) & 1);
          verts[static_cast<usize>(c)] = perim_vid(kk, lf, ck);
        }
        ElementMap map;
        map.kind = ElementMap::Kind::kDiskRing;
        map.side = side;
        map.half = a;
        map.radius = config.radius;
        map.xi0 = static_cast<real_t>(i) / nc;
        map.xi1 = static_cast<real_t>(i + 1) / nc;
        map.f0 = fs[static_cast<usize>(l)];
        map.f1 = fs[static_cast<usize>(l) + 1];
        map.z0 = z0;
        map.z1 = z1;
        std::array<FaceTag, 6> tags{};
        tags[1] = (l == nr - 1) ? FaceTag::kSide : FaceTag::kInterior;
        tags[4] = ztags[0];
        tags[5] = ztags[1];
        mesh.add_element(verts, map, tags);
      }
    }
  }
  return mesh;
}

}  // namespace felis::mesh
