#include "mesh/numbering.hpp"

#include <array>
#include <cstdlib>
#include <unordered_map>

namespace felis::mesh {

namespace {

using Key = std::array<gidx_t, 6>;

struct KeyHash {
  usize operator()(const Key& k) const {
    // FNV-1a style combine; keys are small and well distributed.
    std::uint64_t h = 1469598103934665603ull;
    for (const gidx_t v : k) {
      h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return static_cast<usize>(h);
  }
};

/// In-face frame axes (p,q) for each face (remaining axes, lexicographic).
constexpr std::array<std::array<int, 2>, 6> kFaceFrame = {{
    {1, 2}, {1, 2}, {0, 2}, {0, 2}, {0, 1}, {0, 1},
}};

}  // namespace

GlobalNumbering build_numbering(const HexMesh& mesh, int degree) {
  FELIS_CHECK_MSG(degree >= 1, "numbering requires degree >= 1");
  const int N = degree;
  const int n = N + 1;
  const lidx_t npe = static_cast<lidx_t>(n) * n * n;

  GlobalNumbering numbering;
  numbering.degree = degree;
  numbering.node_ids.assign(
      static_cast<usize>(mesh.num_elements()) * static_cast<usize>(npe), -1);

  std::unordered_map<Key, gidx_t, KeyHash> ids;
  ids.reserve(static_cast<usize>(mesh.num_elements()) * 16);
  gidx_t next_id = 0;
  const auto get_id = [&](const Key& key) -> gidx_t {
    const auto [it, inserted] = ids.try_emplace(key, next_id);
    if (inserted) ++next_id;
    return it->second;
  };

  for (lidx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto& verts = mesh.element_vertices(e);
    const usize base = static_cast<usize>(e) * static_cast<usize>(npe);
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const int idx[3] = {i, j, k};
          const bool extreme[3] = {i == 0 || i == N, j == 0 || j == N,
                                   k == 0 || k == N};
          const int num_extreme = extreme[0] + extreme[1] + extreme[2];
          gidx_t id;
          if (num_extreme == 3) {
            // Vertex node.
            const int c = (i > 0 ? 1 : 0) + 2 * (j > 0 ? 1 : 0) + 4 * (k > 0 ? 1 : 0);
            id = get_id({0, verts[static_cast<usize>(c)], 0, 0, 0, 0});
          } else if (num_extreme == 2) {
            // Edge node: find the varying axis.
            int axis = 0;
            while (extreme[axis]) ++axis;
            // Corner index bits for the two fixed axes come from idx; the
            // varying axis contributes 0 for endpoint a, 1 for endpoint b.
            int bits_fixed = 0;
            if (0 != axis && idx[0] > 0) bits_fixed |= 1;
            if (1 != axis && idx[1] > 0) bits_fixed |= 2;
            if (2 != axis && idx[2] > 0) bits_fixed |= 4;
            const int axis_bit = 1 << axis;
            const gidx_t ga = verts[static_cast<usize>(bits_fixed)];
            const gidx_t gb = verts[static_cast<usize>(bits_fixed | axis_bit)];
            FELIS_CHECK_MSG(ga != gb,
                            "degenerate edge (periodic direction too small?)");
            const int step = idx[axis];
            if (ga < gb)
              id = get_id({1, ga, gb, step, 0, 0});
            else
              id = get_id({1, gb, ga, N - step, 0, 0});
          } else if (num_extreme == 1) {
            // Face node: identify the face and the in-face coordinates.
            int axis = 0;
            while (!extreme[axis]) ++axis;
            const int face = 2 * axis + (idx[axis] > 0 ? 1 : 0);
            const auto fc = face_corners(face);
            const gidx_t g00 = verts[static_cast<usize>(fc[0])];
            const gidx_t g10 = verts[static_cast<usize>(fc[1])];
            const gidx_t g01 = verts[static_cast<usize>(fc[2])];
            const gidx_t g11 = verts[static_cast<usize>(fc[3])];
            const int p = idx[kFaceFrame[static_cast<usize>(face)][0]];
            const int q = idx[kFaceFrame[static_cast<usize>(face)][1]];
            // Locate the smallest-id corner and measure steps from it.
            const gidx_t gs[4] = {g00, g10, g01, g11};
            const int pa[4] = {0, N, 0, N};  // p of corners 00,10,01,11
            const int qa[4] = {0, 0, N, N};
            int m = 0;
            for (int c = 1; c < 4; ++c)
              if (gs[c] < gs[m]) m = c;
            const int alpha_raw = std::abs(p - pa[m]);
            const int beta_raw = std::abs(q - qa[m]);
            // Adjacent corners of m along p and along q.
            const int adj_p = m ^ 1;  // flip p-bit (corner order 00,10,01,11)
            const int adj_q = m ^ 2;  // flip q-bit
            const gidx_t gp = gs[adj_p];
            const gidx_t gq = gs[adj_q];
            FELIS_CHECK_MSG(gp != gq && gs[m] != gp && gs[m] != gq,
                            "degenerate face (periodic direction too small?)");
            gidx_t first = gp, second = gq;
            int alpha = alpha_raw, beta = beta_raw;
            if (gq < gp) {
              first = gq;
              second = gp;
              alpha = beta_raw;
              beta = alpha_raw;
            }
            // Include the diagonal corner too so the key pins all 4 vertices.
            const gidx_t diag = gs[m ^ 3];
            id = get_id({2, gs[m], first, second, diag,
                         static_cast<gidx_t>(alpha) * (N + 1) + beta});
          } else {
            // Interior node: always a fresh id.
            id = next_id++;
          }
          numbering.node_ids[base + static_cast<usize>(i + n * (j + n * k))] = id;
        }
      }
    }
  }
  numbering.num_global_nodes = next_id;
  return numbering;
}

}  // namespace felis::mesh
