#include "mesh/partition.hpp"

#include <algorithm>
#include <numeric>

namespace felis::mesh {

namespace {

/// Recursively split `elems` (indices into centroids) into `nparts` balanced
/// parts by the coordinate with the largest extent.
void rcb_split(const std::vector<Point>& centroids, std::vector<lidx_t>& elems,
               usize begin, usize end, int part_begin, int nparts,
               std::vector<int>& rank_of) {
  if (nparts == 1) {
    for (usize i = begin; i < end; ++i)
      rank_of[static_cast<usize>(elems[i])] = part_begin;
    return;
  }
  // Pick the axis with the largest centroid extent in this subset.
  Point lo = centroids[static_cast<usize>(elems[begin])];
  Point hi = lo;
  for (usize i = begin; i < end; ++i) {
    const Point& c = centroids[static_cast<usize>(elems[i])];
    for (int d = 0; d < kDim; ++d) {
      lo[static_cast<usize>(d)] = std::min(lo[static_cast<usize>(d)], c[static_cast<usize>(d)]);
      hi[static_cast<usize>(d)] = std::max(hi[static_cast<usize>(d)], c[static_cast<usize>(d)]);
    }
  }
  int axis = 0;
  for (int d = 1; d < kDim; ++d)
    if (hi[static_cast<usize>(d)] - lo[static_cast<usize>(d)] >
        hi[static_cast<usize>(axis)] - lo[static_cast<usize>(axis)])
      axis = d;

  // Split element counts proportionally to sub-part counts.
  const int left_parts = nparts / 2;
  const int right_parts = nparts - left_parts;
  const usize count = end - begin;
  const usize left_count = count * static_cast<usize>(left_parts) / static_cast<usize>(nparts);
  const auto mid = elems.begin() + static_cast<std::ptrdiff_t>(begin + left_count);
  std::nth_element(elems.begin() + static_cast<std::ptrdiff_t>(begin), mid,
                   elems.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](lidx_t a, lidx_t b) {
                     return centroids[static_cast<usize>(a)][static_cast<usize>(axis)] <
                            centroids[static_cast<usize>(b)][static_cast<usize>(axis)];
                   });
  rcb_split(centroids, elems, begin, begin + left_count, part_begin, left_parts,
            rank_of);
  rcb_split(centroids, elems, begin + left_count, end, part_begin + left_parts,
            right_parts, rank_of);
}

}  // namespace

std::vector<int> partition_rcb(const HexMesh& mesh, int nranks) {
  FELIS_CHECK(nranks >= 1);
  FELIS_CHECK_MSG(mesh.num_elements() >= nranks,
                  "fewer elements than ranks: " << mesh.num_elements() << " < "
                                                << nranks);
  std::vector<Point> centroids(static_cast<usize>(mesh.num_elements()));
  for (lidx_t e = 0; e < mesh.num_elements(); ++e)
    centroids[static_cast<usize>(e)] = mesh.centroid(e);
  std::vector<lidx_t> elems(static_cast<usize>(mesh.num_elements()));
  std::iota(elems.begin(), elems.end(), 0);
  std::vector<int> rank_of(static_cast<usize>(mesh.num_elements()), -1);
  rcb_split(centroids, elems, 0, elems.size(), 0, nranks, rank_of);
  return rank_of;
}

std::vector<LocalMesh> split_mesh(const HexMesh& mesh,
                                  const GlobalNumbering& numbering,
                                  const std::vector<int>& element_rank,
                                  int nranks) {
  FELIS_CHECK(static_cast<lidx_t>(element_rank.size()) == mesh.num_elements());
  std::vector<LocalMesh> locals(static_cast<usize>(nranks));
  for (auto& lm : locals) {
    lm.degree = numbering.degree;
    lm.num_global_nodes = numbering.num_global_nodes;
  }
  const lidx_t npe = numbering.nodes_per_element();
  for (lidx_t e = 0; e < mesh.num_elements(); ++e) {
    const int r = element_rank[static_cast<usize>(e)];
    FELIS_CHECK(r >= 0 && r < nranks);
    LocalMesh& lm = locals[static_cast<usize>(r)];
    lm.element_gids.push_back(e);
    lm.maps.push_back(mesh.element_map(e));
    lm.element_vertices.push_back(mesh.element_vertices(e));
    std::array<FaceTag, 6> tags{};
    for (int f = 0; f < kFacesPerElement; ++f) tags[static_cast<usize>(f)] = mesh.face_tag(e, f);
    lm.face_tags.push_back(tags);
    const auto* src =
        numbering.node_ids.data() + static_cast<usize>(e) * static_cast<usize>(npe);
    lm.node_ids.insert(lm.node_ids.end(), src, src + npe);
  }
  for (const auto& lm : locals)
    FELIS_CHECK_MSG(lm.num_elements() > 0, "empty rank in partition");
  return locals;
}

std::vector<LocalMesh> distribute_mesh(const HexMesh& mesh, int degree,
                                       int nranks) {
  const GlobalNumbering numbering = build_numbering(mesh, degree);
  const std::vector<int> ranks = partition_rcb(mesh, nranks);
  return split_mesh(mesh, numbering, ranks, nranks);
}

}  // namespace felis::mesh
