/// \file ops.hpp
/// \brief Matrix-free spectral-element operators.
///
/// Everything here works on the *unassembled* per-element representation
/// ("one always works with the unassembled matrix on a per-element basis",
/// §5.1): routines compute local element contributions; callers apply the
/// gather–scatter to assemble and masks to impose Dirichlet conditions.
#pragma once

#include "operators/context.hpp"

namespace felis::operators {

/// Helmholtz operator, local part: out = h1·A u + h2·B u where A is the
/// (weak) stiffness built from the metric factors g and B the diagonal mass.
/// The caller applies GS + masks. This is the `compute` kernel of the
/// paper's abstract matrix-vector product type.
void ax_helmholtz(const Context& ctx, const RealVec& u, RealVec& out, real_t h1,
                  real_t h2);

/// Pointwise physical gradient: dudx_a(q) = Σ_c drdx(c,a) ∂u/∂r_c (no mass).
void grad(const Context& ctx, const RealVec& u, RealVec& dudx, RealVec& dudy,
          RealVec& dudz);

/// Weak divergence moments: out_i = Σ_a (∂φ_i/∂x_a, u_a)  — i.e. ∫∇φ·u.
/// This is the pressure-Poisson right-hand-side primitive; its natural
/// (do-nothing) boundary condition is exactly the splitting scheme's
/// homogeneous pressure Neumann condition.
void div_weak(const Context& ctx, const RealVec& ux, const RealVec& uy,
              const RealVec& uz, RealVec& out);

/// Pointwise strong divergence (diagnostics): out = ∇·u.
void div_strong(const Context& ctx, const RealVec& ux, const RealVec& uy,
                const RealVec& uz, RealVec& out);

/// Assembled diagonal of h1·A + h2·B (gather–scattered); the block-Jacobi
/// preconditioner for velocity/temperature solves (§6) inverts this.
RealVec diag_helmholtz(const Context& ctx, real_t h1, real_t h2);

/// CFL number of the velocity field for time step dt (global max).
real_t cfl(const Context& ctx, const RealVec& ux, const RealVec& uy,
           const RealVec& uz, real_t dt);

/// Dealiased (3/2-rule) advection operator: evaluates the convective term on
/// the Gauss grid and projects it back (§6 "overintegration").
class Advector {
 public:
  explicit Advector(const Context& ctx);

  /// Set the advecting velocity c (GLL nodal); precomputes the contravariant
  /// flux coefficients wJ·(c·∇r_a) on the Gauss grid.
  void set_velocity(const RealVec& cx, const RealVec& cy, const RealVec& cz);

  /// out += sign · (φ, (c·∇)u) in weak dealiased form (local part; caller
  /// gather-scatters). Call set_velocity first. Scratch comes from the
  /// per-thread device::Workspace, so concurrent apply() calls on one
  /// Advector are safe (set_velocity vs apply is still caller-ordered).
  void apply(const RealVec& u, RealVec& out, real_t sign) const;

 private:
  Context ctx_;
  RealVec cr_, cs_, ct_;  ///< flux coefficients per Gauss node
};

// ---- backend-dispatched vector kernels (the Krylov/solver BLAS-1 layer) ----

void vec_copy(device::Backend& dev, const RealVec& x, RealVec& y);  ///< y = x
void vec_fill(device::Backend& dev, real_t a, RealVec& y);          ///< y = a
void vec_scale(device::Backend& dev, real_t a, RealVec& y);         ///< y *= a
void vec_shift(device::Backend& dev, real_t a, RealVec& y);         ///< y += a
/// y += a·x
void vec_axpy(device::Backend& dev, real_t a, const RealVec& x, RealVec& y);
/// y = x + a·y
void vec_xpay(device::Backend& dev, const RealVec& x, real_t a, RealVec& y);
/// y = a·x
void vec_scaled(device::Backend& dev, real_t a, const RealVec& x, RealVec& y);
/// z = x − y
void vec_sub(device::Backend& dev, const RealVec& x, const RealVec& y,
             RealVec& z);
void vec_add(device::Backend& dev, const RealVec& x, RealVec& y);  ///< y += x
void vec_mul(device::Backend& dev, const RealVec& x, RealVec& y);  ///< y *= x

}  // namespace felis::operators
