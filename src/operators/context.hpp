/// \file context.hpp
/// \brief Bundle of the per-rank discretization objects operators act on.
#pragma once

#include "comm/comm.hpp"
#include "common/profiler.hpp"
#include "device/backend.hpp"
#include "field/coef.hpp"
#include "field/space.hpp"
#include "field/tensor_simd.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/partition.hpp"

namespace felis::telemetry {
class Telemetry;
}

namespace felis::operators {

/// Non-owning view of one rank's discretization. All operator routines take
/// this; `prof` is optional instrumentation (feeds Fig. 4 and the perfmodel).
struct Context {
  const mesh::LocalMesh* lmesh = nullptr;
  const field::Space* space = nullptr;
  const field::Coef* coef = nullptr;
  const gs::GatherScatter* gs = nullptr;
  comm::Communicator* comm = nullptr;
  Profiler* prof = nullptr;
  /// Compute backend every element loop and vector kernel dispatches through;
  /// null falls back to the process default (FELIS_BACKEND / auto), so a
  /// zero-initialized Context keeps working.
  device::Backend* backend = nullptr;
  /// Optional run-wide telemetry context (metrics + trace + health). Null in
  /// plain operator tests; layers without a Context fall back to
  /// telemetry::Telemetry::current().
  telemetry::Telemetry* telemetry = nullptr;
  /// Autotuned tensor-product kernel table (owned by RankSetup). Null falls
  /// back to the reference kernels, so a zero-initialized Context computes
  /// identical results — every variant is bitwise-equal to the reference.
  const field::TensorKernels* kernels = nullptr;

  device::Backend& dev() const {
    return backend != nullptr ? *backend : device::default_backend();
  }

  const field::TensorKernels& kern() const {
    return kernels != nullptr ? *kernels : field::TensorKernels::reference();
  }

  lidx_t num_elements() const { return lmesh->num_elements(); }
  lidx_t nodes_per_element() const { return space->nodes_per_element(); }
  usize num_dofs() const {
    return static_cast<usize>(num_elements()) *
           static_cast<usize>(nodes_per_element());
  }
};

/// Weighted global inner product Σ x·y·w (w typically the inverse
/// multiplicity so duplicated dofs count once), reduced across ranks.
real_t glsc3(const Context& ctx, const RealVec& x, const RealVec& y,
             const RealVec& w);

/// Global inner product with the inverse-multiplicity weight.
real_t gdot(const Context& ctx, const RealVec& x, const RealVec& y);

/// Volume-weighted mean removal (pressure null space in the fully enclosed
/// cell): x ← x − (∫x dV)/(∫dV), using mass × inverse multiplicity weights.
/// Use for *solution* normalization.
void remove_mean(const Context& ctx, RealVec& x);

/// Range projection for the singular all-Neumann operator: b ← b − c with
/// the constant c chosen so that the sum of b over *unique* dofs vanishes
/// (null(A) = constants, so range(A) = {b : Σ_unique b_i = 0}). Use on
/// right-hand sides and Krylov basis vectors; using the volume mean here
/// leaves a null component that makes CG/GMRES diverge along constants.
void remove_null_component(const Context& ctx, RealVec& b);

}  // namespace felis::operators
