/// \file tensor_dispatch.hpp
/// \brief Autotuned selection of the tensor-product kernel variants one
/// discretization dispatches through.
///
/// Called once per RankSetup construction: for each tensor kernel the
/// candidate variants (field/tensor_simd.hpp) are timed on representative
/// element data and the winner lands in the returned field::TensorKernels
/// table, which operators::Context hands to every hot-path caller. Winners
/// are cached process-wide per (kernel, n, backend, threads) key — and
/// across processes via FELIS_TUNE_CACHE — so repeated setups (campaign
/// workers, tests) tune exactly once. Setting FELIS_TUNE=off skips tuning
/// and returns the reference table; every variant is bitwise identical to
/// the reference, so the switch (and any tuning outcome) never changes
/// results.
#pragma once

#include "device/backend.hpp"
#include "field/space.hpp"
#include "field/tensor_simd.hpp"

namespace felis::operators {

/// Select the fastest bitwise-identical variant of each tensor kernel for
/// `space`'s polynomial order on `backend`. Emits the chosen variants
/// through telemetry (`autotune.*` metrics) and the debug log.
field::TensorKernels tune_tensor_kernels(const field::Space& space,
                                         device::Backend& backend);

}  // namespace felis::operators
