#include "operators/tensor_dispatch.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logger.hpp"
#include "device/autotune.hpp"
#include "telemetry/telemetry.hpp"

namespace felis::operators {

namespace {

/// Elements of representative data per candidate invocation: enough work to
/// rise above clock resolution, small enough to keep setup instant.
constexpr lidx_t kTuneElements = 8;
constexpr int kTuneReps = 3;

bool tuning_disabled() {
  const char* env = std::getenv("FELIS_TUNE");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "off" || v == "0" || v == "false";
}

/// Smooth deterministic filler (no RNG: tuning inputs must not perturb any
/// seeded randomness a caller depends on).
void fill(RealVec& v) {
  for (usize i = 0; i < v.size(); ++i)
    v[i] = std::sin(0.37 * static_cast<real_t>(i) + 0.11);
}

void note_choice(const char* kernel, const char* variant, bool from_cache) {
  telemetry::charge_counter(from_cache ? "autotune.cache_hits"
                                       : "autotune.fresh_tunes");
  const std::string name =
      std::string("autotune.") + kernel + "." + variant;
  telemetry::charge_counter(name.c_str());
}

}  // namespace

field::TensorKernels tune_tensor_kernels(const field::Space& space,
                                         device::Backend& backend) {
  field::TensorKernels table;  // defaults to the reference kernels
  if (tuning_disabled()) return table;

  const int n = space.n, m = space.nd;
  const usize npe = static_cast<usize>(space.nodes_per_element());
  const usize npe_d = static_cast<usize>(space.dealias_nodes_per_element());
  const usize batch = static_cast<usize>(kTuneElements);

  RealVec in(batch * npe);
  RealVec out(batch * (npe > npe_d ? npe : npe_d));
  RealVec us(batch * npe), ut(batch * npe);
  RealVec work(static_cast<usize>(m) * static_cast<usize>(n) *
               static_cast<usize>(m + n));
  fill(in);

  device::TuneKey key;
  key.n = n;
  key.backend = backend.name();
  key.threads = backend.concurrency();
  device::TuneCache& cache = device::TuneCache::instance();

  const auto tune_axis = [&](const char* kernel,
                             const std::vector<field::AxisVariant>& variants,
                             field::AxisFn* slot, const char** name_slot) {
    std::vector<device::TuneCandidate> candidates;
    candidates.reserve(variants.size());
    for (const field::AxisVariant& v : variants) {
      candidates.push_back({v.name, [&, fn = v.fn] {
                              for (usize e = 0; e < batch; ++e)
                                fn(space.d, in.data() + e * npe,
                                   out.data() + e * npe, n, n);
                            }});
    }
    key.kernel = kernel;
    const device::TuneResult r = cache.tune(key, candidates, kTuneReps);
    *slot = variants[r.best_index].fn;
    *name_slot = variants[r.best_index].name;
    note_choice(kernel, variants[r.best_index].name, r.from_cache);
  };

  tune_axis("axis0", field::axis0_variants(n), &table.axis0,
            &table.axis0_name);
  tune_axis("axis1", field::axis1_variants(n), &table.axis1,
            &table.axis1_name);
  tune_axis("axis2", field::axis2_variants(n), &table.axis2,
            &table.axis2_name);

  {
    const std::vector<field::GradVariant> variants = field::grad_variants(n);
    std::vector<device::TuneCandidate> candidates;
    candidates.reserve(variants.size());
    for (const field::GradVariant& v : variants) {
      candidates.push_back({v.name, [&, fn = v.fn] {
                              for (usize e = 0; e < batch; ++e)
                                fn(space.d, in.data() + e * npe,
                                   out.data() + e * npe, us.data() + e * npe,
                                   ut.data() + e * npe, n);
                            }});
    }
    key.kernel = "grad_ref";
    const device::TuneResult r = cache.tune(key, candidates, kTuneReps);
    table.grad = variants[r.best_index].fn;
    table.grad_name = variants[r.best_index].name;
    note_choice("grad_ref", variants[r.best_index].name, r.from_cache);
  }

  {
    const std::vector<field::InterpVariant> variants =
        field::interp_variants(n);
    std::vector<device::TuneCandidate> candidates;
    candidates.reserve(variants.size());
    for (const field::InterpVariant& v : variants) {
      candidates.push_back({v.name, [&, fn = v.fn] {
                              for (usize e = 0; e < batch; ++e)
                                fn(space.interp, in.data() + e * npe,
                                   out.data() + e * npe_d, work.data(), n, m);
                            }});
    }
    key.kernel = "interp3";
    const device::TuneResult r = cache.tune(key, candidates, kTuneReps);
    table.interp = variants[r.best_index].fn;
    table.interp_name = variants[r.best_index].name;
    note_choice("interp3", variants[r.best_index].name, r.from_cache);
  }

  FELIS_LOG_INFO("autotune: n=", n, " backend=", key.backend, "/",
                 key.threads, " axis0=", table.axis0_name, " axis1=",
                 table.axis1_name, " axis2=", table.axis2_name, " grad=",
                 table.grad_name, " interp=", table.interp_name);
  return table;
}

}  // namespace felis::operators
