/// \file setup.hpp
/// \brief Convenience bundle building one rank's full discretization stack
/// (local mesh, space, geometric factors, gather–scatter) from a global mesh.
///
/// Every rank calls this with the same global mesh; partitioning and
/// numbering are deterministic, so all ranks agree without communication.
#pragma once

#include <memory>

#include "operators/context.hpp"
#include "operators/tensor_dispatch.hpp"

namespace felis::operators {

struct RankSetup {
  mesh::LocalMesh lmesh;
  field::Space space;
  field::Coef coef;
  std::unique_ptr<gs::GatherScatter> gs;
  std::unique_ptr<Profiler> prof;
  comm::Communicator* comm = nullptr;
  device::Backend* backend = nullptr;  ///< null = process default
  telemetry::Telemetry* telemetry = nullptr;  ///< null = telemetry off
  /// Autotuned tensor kernels for this space/backend (reference table until
  /// tune_tensor_kernels fills it in make_rank_setup).
  field::TensorKernels kernels;

  Context ctx() const {
    Context c;
    c.lmesh = &lmesh;
    c.space = &space;
    c.coef = &coef;
    c.gs = gs.get();
    c.comm = comm;
    c.prof = prof.get();
    c.backend = backend;
    c.telemetry = telemetry;
    c.kernels = &kernels;
    return c;
  }
};

/// `dealias`: build the Gauss-grid geometric factors (required by the
/// advector). `three_halves_rule`: use the 3/2 overintegration grid (false
/// collocates advection on the GLL grid — the aliased ablation variant).
/// `backend`: compute backend carried into every Context built from this
/// setup (and into the gather–scatter local phases); null = process default
/// (FELIS_BACKEND env / auto).
inline RankSetup make_rank_setup(const mesh::HexMesh& global_mesh, int degree,
                                 comm::Communicator& comm, bool dealias,
                                 bool three_halves_rule = true,
                                 device::Backend* backend = nullptr) {
  RankSetup s;
  auto locals = mesh::distribute_mesh(global_mesh, degree, comm.size());
  s.lmesh = std::move(locals[static_cast<usize>(comm.rank())]);
  s.space = field::Space::make(degree, three_halves_rule);
  s.coef = field::build_coef(s.lmesh, s.space, dealias);
  s.gs = std::make_unique<gs::GatherScatter>(s.lmesh, comm, /*channel=*/0,
                                             backend);
  s.prof = std::make_unique<Profiler>();
  s.comm = &comm;
  s.backend = backend;
  s.kernels = tune_tensor_kernels(
      s.space, backend != nullptr ? *backend : device::default_backend());
  return s;
}

}  // namespace felis::operators
