#include "operators/ops.hpp"

#include <cmath>

#include "device/workspace.hpp"

namespace felis::operators {

namespace {

/// Block length for dof-level reductions: the fixed association contract
/// (device::kReduceGrain) shared by every backend and thread count.
constexpr lidx_t kDofGrain = device::kReduceGrain;

lidx_t vec_len(const RealVec& x) { return static_cast<lidx_t>(x.size()); }

}  // namespace

real_t glsc3(const Context& ctx, const RealVec& x, const RealVec& y,
             const RealVec& w) {
  FELIS_CHECK(x.size() == y.size() && x.size() == w.size());
  real_t s = ctx.dev().reduce_sum(
      vec_len(x),
      [&](lidx_t begin, lidx_t end) {
        real_t acc = 0;
        for (lidx_t i = begin; i < end; ++i) {
          const usize u = static_cast<usize>(i);
          acc += x[u] * y[u] * w[u];
        }
        return acc;
      },
      kDofGrain);
  ctx.comm->allreduce(&s, 1, comm::ReduceOp::kSum);
  if (ctx.prof) {
    ctx.prof->add_flops(3.0 * static_cast<double>(x.size()));
    ctx.prof->add_bytes(3.0 * static_cast<double>(x.size() * sizeof(real_t)));
    ctx.prof->add_reduction();
  }
  return s;
}

real_t gdot(const Context& ctx, const RealVec& x, const RealVec& y) {
  return glsc3(ctx, x, y, ctx.gs->inverse_multiplicity());
}

void remove_mean(const Context& ctx, RealVec& x) {
  const RealVec& inv_mult = ctx.gs->inverse_multiplicity();
  const RealVec& mass = ctx.coef->mass;
  real_t sums[2] = {0, 0};
  ctx.dev().reduce_sum(
      vec_len(x), 2, sums,
      [&](lidx_t begin, lidx_t end, real_t* acc) {
        for (lidx_t i = begin; i < end; ++i) {
          const usize u = static_cast<usize>(i);
          const real_t bw = mass[u] * inv_mult[u];
          acc[0] += bw * x[u];
          acc[1] += bw;
        }
      },
      kDofGrain);
  ctx.comm->allreduce(sums, 2, comm::ReduceOp::kSum);
  if (ctx.prof) ctx.prof->add_reduction();
  vec_shift(ctx.dev(), -sums[0] / sums[1], x);
}

void remove_null_component(const Context& ctx, RealVec& b) {
  const RealVec& inv_mult = ctx.gs->inverse_multiplicity();
  real_t sums[2] = {0, 0};
  ctx.dev().reduce_sum(
      vec_len(b), 2, sums,
      [&](lidx_t begin, lidx_t end, real_t* acc) {
        for (lidx_t i = begin; i < end; ++i) {
          const usize u = static_cast<usize>(i);
          acc[0] += b[u] * inv_mult[u];
          acc[1] += inv_mult[u];
        }
      },
      kDofGrain);
  ctx.comm->allreduce(sums, 2, comm::ReduceOp::kSum);
  if (ctx.prof) ctx.prof->add_reduction();
  vec_shift(ctx.dev(), -sums[0] / sums[1], b);
}

void ax_helmholtz(const Context& ctx, const RealVec& u, RealVec& out, real_t h1,
                  real_t h2) {
  const field::Space& sp = *ctx.space;
  const field::Coef& coef = *ctx.coef;
  const int n = sp.n;
  const lidx_t npe = sp.nodes_per_element();
  const lidx_t nelem = ctx.num_elements();
  const field::TensorKernels& kern = ctx.kern();
  FELIS_CHECK(u.size() == ctx.num_dofs() && out.size() == ctx.num_dofs());

  ctx.dev().parallel_for_blocked(
      nelem, /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        device::WorkspaceFrame scratch;
        const usize npeu = static_cast<usize>(npe);
        RealVec& ur = scratch.vec(npeu);
        RealVec& us = scratch.vec(npeu);
        RealVec& ut = scratch.vec(npeu);
        RealVec& wr = scratch.vec(npeu);
        RealVec& ws = scratch.vec(npeu);
        RealVec& wt = scratch.vec(npeu);
        RealVec& tmp = scratch.vec(npeu);
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * npeu;
          const real_t* ue = u.data() + base;
          real_t* oe = out.data() + base;
          kern.grad(sp.d, ue, ur.data(), us.data(), ut.data(), n);
          for (lidx_t q = 0; q < npe; ++q) {
            const usize o = base + static_cast<usize>(q);
            const real_t g11 = coef.g[0][o], g12 = coef.g[1][o],
                         g13 = coef.g[2][o];
            const real_t g22 = coef.g[3][o], g23 = coef.g[4][o],
                         g33 = coef.g[5][o];
            const usize i = static_cast<usize>(q);
            wr[i] = g11 * ur[i] + g12 * us[i] + g13 * ut[i];
            ws[i] = g12 * ur[i] + g22 * us[i] + g23 * ut[i];
            wt[i] = g13 * ur[i] + g23 * us[i] + g33 * ut[i];
          }
          // out = h1 (D_rᵀ wr + D_sᵀ ws + D_tᵀ wt) + h2 B u.
          kern.axis0(sp.dt, wr.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q)
            oe[q] = h1 * tmp[static_cast<usize>(q)];
          kern.axis1(sp.dt, ws.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q)
            oe[q] += h1 * tmp[static_cast<usize>(q)];
          kern.axis2(sp.dt, wt.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q)
            oe[q] += h1 * tmp[static_cast<usize>(q)];
          if (h2 != 0.0) {
            for (lidx_t q = 0; q < npe; ++q)
              oe[q] += h2 * coef.mass[base + static_cast<usize>(q)] * ue[q];
          }
        }
      });
  if (ctx.prof) {
    // 6 tensor contractions of 2n⁴ flops each + ~18n³ pointwise per element.
    const double flops = static_cast<double>(nelem) *
                         (12.0 * std::pow(n, 4) + 18.0 * std::pow(n, 3));
    ctx.prof->add_flops(flops);
    ctx.prof->add_bytes(10.0 * static_cast<double>(ctx.num_dofs() * sizeof(real_t)));
  }
}

void grad(const Context& ctx, const RealVec& u, RealVec& dudx, RealVec& dudy,
          RealVec& dudz) {
  const field::Space& sp = *ctx.space;
  const field::Coef& coef = *ctx.coef;
  const int n = sp.n;
  const lidx_t npe = sp.nodes_per_element();
  const field::TensorKernels& kern = ctx.kern();
  ctx.dev().parallel_for_blocked(
      ctx.num_elements(), /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        device::WorkspaceFrame scratch;
        const usize npeu = static_cast<usize>(npe);
        RealVec& ur = scratch.vec(npeu);
        RealVec& us = scratch.vec(npeu);
        RealVec& ut = scratch.vec(npeu);
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * npeu;
          kern.grad(sp.d, u.data() + base, ur.data(), us.data(), ut.data(), n);
          for (lidx_t q = 0; q < npe; ++q) {
            const usize o = base + static_cast<usize>(q);
            const usize i = static_cast<usize>(q);
            dudx[o] = coef.drdx[0][o] * ur[i] + coef.drdx[3][o] * us[i] +
                      coef.drdx[6][o] * ut[i];
            dudy[o] = coef.drdx[1][o] * ur[i] + coef.drdx[4][o] * us[i] +
                      coef.drdx[7][o] * ut[i];
            dudz[o] = coef.drdx[2][o] * ur[i] + coef.drdx[5][o] * us[i] +
                      coef.drdx[8][o] * ut[i];
          }
        }
      });
  if (ctx.prof)
    ctx.prof->add_flops(static_cast<double>(ctx.num_elements()) *
                        (6.0 * std::pow(n, 4) + 15.0 * std::pow(n, 3)));
}

void div_weak(const Context& ctx, const RealVec& ux, const RealVec& uy,
              const RealVec& uz, RealVec& out) {
  const field::Space& sp = *ctx.space;
  const field::Coef& coef = *ctx.coef;
  const int n = sp.n;
  const lidx_t npe = sp.nodes_per_element();
  const field::TensorKernels& kern = ctx.kern();
  const RealVec* u[3] = {&ux, &uy, &uz};
  ctx.dev().parallel_for_blocked(
      ctx.num_elements(), /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        device::WorkspaceFrame scratch;
        const usize npeu = static_cast<usize>(npe);
        RealVec& wr = scratch.vec(npeu);
        RealVec& ws = scratch.vec(npeu);
        RealVec& wt = scratch.vec(npeu);
        RealVec& tmp = scratch.vec(npeu);
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * npeu;
          real_t* oe = out.data() + base;
          // wr_c(q) = B(q)·Σ_a drdx(c,a)(q)·u_a(q); then out = Σ_c D_cᵀ wr_c.
          for (lidx_t q = 0; q < npe; ++q) {
            const usize o = base + static_cast<usize>(q);
            const usize i = static_cast<usize>(q);
            real_t sr = 0, ss = 0, st = 0;
            for (int a = 0; a < 3; ++a) {
              const real_t ua = (*u[a])[o];
              sr += coef.drdx[static_cast<usize>(0 + a)][o] * ua;
              ss += coef.drdx[static_cast<usize>(3 + a)][o] * ua;
              st += coef.drdx[static_cast<usize>(6 + a)][o] * ua;
            }
            // mass = jac·w, so wr carries the full jac·w·drdx·u quadrature
            // factor.
            wr[i] = coef.mass[o] * sr;
            ws[i] = coef.mass[o] * ss;
            wt[i] = coef.mass[o] * st;
          }
          kern.axis0(sp.dt, wr.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q) oe[q] = tmp[static_cast<usize>(q)];
          kern.axis1(sp.dt, ws.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q) oe[q] += tmp[static_cast<usize>(q)];
          kern.axis2(sp.dt, wt.data(), tmp.data(), n, n);
          for (lidx_t q = 0; q < npe; ++q) oe[q] += tmp[static_cast<usize>(q)];
        }
      });
  if (ctx.prof)
    ctx.prof->add_flops(static_cast<double>(ctx.num_elements()) *
                        (6.0 * std::pow(n, 4) + 24.0 * std::pow(n, 3)));
}

void div_strong(const Context& ctx, const RealVec& ux, const RealVec& uy,
                const RealVec& uz, RealVec& out) {
  const usize nd = ctx.num_dofs();
  device::WorkspaceFrame scratch;
  RealVec& dx = scratch.vec(nd);
  RealVec& dy = scratch.vec(nd);
  RealVec& dz = scratch.vec(nd);
  grad(ctx, ux, dx, dy, dz);
  vec_copy(ctx.dev(), dx, out);
  grad(ctx, uy, dx, dy, dz);
  vec_add(ctx.dev(), dy, out);
  grad(ctx, uz, dx, dy, dz);
  vec_add(ctx.dev(), dz, out);
}

RealVec diag_helmholtz(const Context& ctx, real_t h1, real_t h2) {
  const field::Space& sp = *ctx.space;
  const field::Coef& coef = *ctx.coef;
  const int n = sp.n;
  const lidx_t npe = sp.nodes_per_element();
  RealVec diag(ctx.num_dofs(), 0.0);
  // Exact diagonal of the local stiffness:
  //   A_(ijk),(ijk) = Σ_m D(m,i)² g11(m,j,k) + Σ_m D(m,j)² g22(i,m,k)
  //                 + Σ_m D(m,k)² g33(i,j,m)
  //                 + 2 D(i,i)D(j,j) g12(i,j,k) + 2 D(i,i)D(k,k) g13(i,j,k)
  //                 + 2 D(j,j)D(k,k) g23(i,j,k).
  RealVec d2(static_cast<usize>(n) * static_cast<usize>(n));
  RealVec ddiag(static_cast<usize>(n));
  for (int m = 0; m < n; ++m)
    for (int i = 0; i < n; ++i)
      d2[static_cast<usize>(m * n + i)] = sp.d(m, i) * sp.d(m, i);
  for (int i = 0; i < n; ++i) ddiag[static_cast<usize>(i)] = sp.d(i, i);
  const auto at = [n](int i, int j, int k) {
    return static_cast<usize>(i + n * (j + n * k));
  };
  ctx.dev().parallel_for_blocked(
      ctx.num_elements(), /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * static_cast<usize>(npe);
          for (int k = 0; k < n; ++k)
            for (int j = 0; j < n; ++j)
              for (int i = 0; i < n; ++i) {
                real_t v = 0;
                for (int m = 0; m < n; ++m) {
                  v += d2[static_cast<usize>(m * n + i)] *
                       coef.g[0][base + at(m, j, k)];
                  v += d2[static_cast<usize>(m * n + j)] *
                       coef.g[3][base + at(i, m, k)];
                  v += d2[static_cast<usize>(m * n + k)] *
                       coef.g[5][base + at(i, j, m)];
                }
                const usize o = base + at(i, j, k);
                v += 2.0 * ddiag[static_cast<usize>(i)] *
                     ddiag[static_cast<usize>(j)] * coef.g[1][o];
                v += 2.0 * ddiag[static_cast<usize>(i)] *
                     ddiag[static_cast<usize>(k)] * coef.g[2][o];
                v += 2.0 * ddiag[static_cast<usize>(j)] *
                     ddiag[static_cast<usize>(k)] * coef.g[4][o];
                diag[o] = h1 * v + h2 * coef.mass[o];
              }
        }
      });
  ctx.gs->apply(diag, gs::GsOp::kAdd);
  return diag;
}

real_t cfl(const Context& ctx, const RealVec& ux, const RealVec& uy,
           const RealVec& uz, real_t dt) {
  const field::Space& sp = *ctx.space;
  const field::Coef& coef = *ctx.coef;
  const int n = sp.n;
  // Reference-space spacings around each GLL index.
  RealVec dr(static_cast<usize>(n));
  for (int i = 0; i < n; ++i) {
    real_t h = 2.0;
    if (i > 0) h = std::min(h, sp.gll_pts[static_cast<usize>(i)] -
                                   sp.gll_pts[static_cast<usize>(i - 1)]);
    if (i + 1 < n) h = std::min(h, sp.gll_pts[static_cast<usize>(i + 1)] -
                                       sp.gll_pts[static_cast<usize>(i)]);
    dr[static_cast<usize>(i)] = h;
  }
  const lidx_t npe = sp.nodes_per_element();
  // max is exact under any block partition; grain 1 = one partial per element.
  const real_t worst = ctx.dev().reduce_max(
      ctx.num_elements(),
      [&](lidx_t e0, lidx_t e1) {
        real_t local = 0;
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * static_cast<usize>(npe);
          for (int k = 0; k < n; ++k)
            for (int j = 0; j < n; ++j)
              for (int i = 0; i < n; ++i) {
                const usize o = base + static_cast<usize>(i + n * (j + n * k));
                const real_t u[3] = {ux[o], uy[o], uz[o]};
                const int ref[3] = {i, j, k};
                real_t sum = 0;
                for (int a = 0; a < 3; ++a) {
                  real_t ua = 0;
                  for (int b = 0; b < 3; ++b)
                    ua += u[b] * coef.drdx[static_cast<usize>(3 * a + b)][o];
                  sum += std::abs(ua) / dr[static_cast<usize>(ref[a])];
                }
                if (sum > local) local = sum;
              }
        }
        return local;
      },
      /*grain=*/1);
  real_t global = std::max(worst, real_t{0}) * dt;
  ctx.comm->allreduce(&global, 1, comm::ReduceOp::kMax);
  return global;
}

Advector::Advector(const Context& ctx) : ctx_(ctx) {
  const field::Space& sp = *ctx.space;
  const usize nd3 = static_cast<usize>(sp.dealias_nodes_per_element());
  const usize total_d = static_cast<usize>(ctx.num_elements()) * nd3;
  cr_.resize(total_d);
  cs_.resize(total_d);
  ct_.resize(total_d);
  FELIS_CHECK_MSG(!ctx.coef->wjac_d.empty(),
                  "Advector requires dealias geometric factors (build_coef "
                  "with dealias=true)");
}

void Advector::set_velocity(const RealVec& cx, const RealVec& cy,
                            const RealVec& cz) {
  const field::Space& sp = *ctx_.space;
  const field::Coef& coef = *ctx_.coef;
  const int n = sp.n, m = sp.nd;
  const lidx_t npe_d = sp.dealias_nodes_per_element();
  const field::TensorKernels& kern = ctx_.kern();
  const RealVec* c[3] = {&cx, &cy, &cz};
  ctx_.dev().parallel_for_blocked(
      ctx_.num_elements(), /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        device::WorkspaceFrame scratch;
        RealVec& cgl = scratch.vec(static_cast<usize>(npe_d));
        RealVec& work = scratch.vec(static_cast<usize>(sp.nd) *
                                    static_cast<usize>(sp.n) *
                                    static_cast<usize>(sp.nd + sp.n));
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base =
              static_cast<usize>(e) * static_cast<usize>(sp.nodes_per_element());
          const usize base_d = static_cast<usize>(e) * static_cast<usize>(npe_d);
          real_t* dst[3] = {cr_.data() + base_d, cs_.data() + base_d,
                            ct_.data() + base_d};
          for (lidx_t q = 0; q < npe_d; ++q)
            for (int a = 0; a < 3; ++a) dst[a][q] = 0;
          for (int b = 0; b < 3; ++b) {
            kern.interp(sp.interp, c[b]->data() + base, cgl.data(),
                        work.data(), n, m);
            for (lidx_t q = 0; q < npe_d; ++q) {
              const usize o = base_d + static_cast<usize>(q);
              const real_t cb = cgl[static_cast<usize>(q)] * coef.wjac_d[o];
              dst[0][q] += cb * coef.drdx_d[static_cast<usize>(0 + b)][o];
              dst[1][q] += cb * coef.drdx_d[static_cast<usize>(3 + b)][o];
              dst[2][q] += cb * coef.drdx_d[static_cast<usize>(6 + b)][o];
            }
          }
        }
      });
  if (ctx_.prof)
    ctx_.prof->add_flops(static_cast<double>(ctx_.num_elements()) *
                         (3 * 2.0 * std::pow(sp.nd, 3) * sp.n * 3 +
                          18.0 * std::pow(sp.nd, 3)));
}

void Advector::apply(const RealVec& u, RealVec& out, real_t sign) const {
  const field::Space& sp = *ctx_.space;
  const int n = sp.n, m = sp.nd;
  const lidx_t npe = sp.nodes_per_element();
  const lidx_t npe_d = sp.dealias_nodes_per_element();
  const field::TensorKernels& kern = ctx_.kern();
  ctx_.dev().parallel_for_blocked(
      ctx_.num_elements(), /*grain=*/0, [&](lidx_t e0, lidx_t e1, int /*worker*/) {
        device::WorkspaceFrame scratch;
        const usize nd3 = static_cast<usize>(npe_d);
        RealVec& t1 = scratch.vec(nd3);
        RealVec& t2 = scratch.vec(nd3);
        RealVec& s = scratch.vec(nd3);
        RealVec& ua = scratch.vec(static_cast<usize>(npe));
        for (lidx_t e = e0; e < e1; ++e) {
          const usize base = static_cast<usize>(e) * static_cast<usize>(npe);
          const usize base_d = static_cast<usize>(e) * static_cast<usize>(npe_d);
          const real_t* ue = u.data() + base;
          // s(q) = Σ_a c_a(q) · (∂u/∂r_a)(q) on the Gauss grid; ∂u/∂r_a at
          // Gauss points via mixed tensor chains (derivative on axis a,
          // interpolation on the others).
          // axis r: dgl ⊗ interp ⊗ interp.
          kern.axis0(sp.dgl, ue, t1.data(), n, n);
          kern.axis1(sp.interp, t1.data(), t2.data(), m, n);
          kern.axis2(sp.interp, t2.data(), t1.data(), m, m);
          for (lidx_t q = 0; q < npe_d; ++q)
            s[static_cast<usize>(q)] =
                cr_[base_d + static_cast<usize>(q)] * t1[static_cast<usize>(q)];
          // axis s.
          kern.axis0(sp.interp, ue, t1.data(), n, n);
          kern.axis1(sp.dgl, t1.data(), t2.data(), m, n);
          kern.axis2(sp.interp, t2.data(), t1.data(), m, m);
          for (lidx_t q = 0; q < npe_d; ++q)
            s[static_cast<usize>(q)] +=
                cs_[base_d + static_cast<usize>(q)] * t1[static_cast<usize>(q)];
          // axis t.
          kern.axis0(sp.interp, ue, t1.data(), n, n);
          kern.axis1(sp.interp, t1.data(), t2.data(), m, n);
          kern.axis2(sp.dgl, t2.data(), t1.data(), m, m);
          for (lidx_t q = 0; q < npe_d; ++q)
            s[static_cast<usize>(q)] +=
                ct_[base_d + static_cast<usize>(q)] * t1[static_cast<usize>(q)];
          // Project back: out += sign · interpᵀ s (Galerkin weak form).
          kern.axis0(sp.interp_t, s.data(), t1.data(), m, m);
          kern.axis1(sp.interp_t, t1.data(), t2.data(), n, m);
          kern.axis2(sp.interp_t, t2.data(), ua.data(), n, n);
          real_t* oe = out.data() + base;
          for (lidx_t q = 0; q < npe; ++q)
            oe[q] += sign * ua[static_cast<usize>(q)];
        }
      });
  if (ctx_.prof)
    ctx_.prof->add_flops(static_cast<double>(ctx_.num_elements()) * 12.0 *
                             std::pow(m, 3) * n +
                         static_cast<double>(ctx_.num_elements()) * 6.0 *
                             std::pow(m, 3));
}

// ---- backend-dispatched vector kernels --------------------------------------

void vec_copy(device::Backend& dev, const RealVec& x, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(vec_len(x), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] =
                                   x[static_cast<usize>(i)];
                           });
}

void vec_fill(device::Backend& dev, real_t a, RealVec& y) {
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] = a;
                           });
}

void vec_scale(device::Backend& dev, real_t a, RealVec& y) {
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] *= a;
                           });
}

void vec_shift(device::Backend& dev, real_t a, RealVec& y) {
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] += a;
                           });
}

void vec_axpy(device::Backend& dev, real_t a, const RealVec& x, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] +=
                                   a * x[static_cast<usize>(i)];
                           });
}

void vec_xpay(device::Backend& dev, const RealVec& x, real_t a, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(
      vec_len(y), 0, [&](lidx_t begin, lidx_t end, int /*worker*/) {
        for (lidx_t i = begin; i < end; ++i) {
          const usize u = static_cast<usize>(i);
          y[u] = x[u] + a * y[u];
        }
      });
}

void vec_scaled(device::Backend& dev, real_t a, const RealVec& x, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] =
                                   a * x[static_cast<usize>(i)];
                           });
}

void vec_sub(device::Backend& dev, const RealVec& x, const RealVec& y,
             RealVec& z) {
  FELIS_ASSERT(x.size() == y.size() && x.size() == z.size());
  dev.parallel_for_blocked(
      vec_len(z), 0, [&](lidx_t begin, lidx_t end, int /*worker*/) {
        for (lidx_t i = begin; i < end; ++i) {
          const usize u = static_cast<usize>(i);
          z[u] = x[u] - y[u];
        }
      });
}

void vec_add(device::Backend& dev, const RealVec& x, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] +=
                                   x[static_cast<usize>(i)];
                           });
}

void vec_mul(device::Backend& dev, const RealVec& x, RealVec& y) {
  FELIS_ASSERT(x.size() == y.size());
  dev.parallel_for_blocked(vec_len(y), 0,
                           [&](lidx_t begin, lidx_t end, int /*worker*/) {
                             for (lidx_t i = begin; i < end; ++i)
                               y[static_cast<usize>(i)] *=
                                   x[static_cast<usize>(i)];
                           });
}

}  // namespace felis::operators
