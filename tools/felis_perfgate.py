#!/usr/bin/env python3
"""felis-perfgate: compare a fresh bench_kernels sweep against the committed
baseline and fail on regression.

The baseline (BENCH_kernels.json at the repo root) is a committed perf
trajectory: every PR that touches a kernel reruns the sweep and the gate
refuses deltas outside the tolerance band. Two comparison modes:

  ratio (default)  Per-record ns_per_iter is normalized by an anchor — the
                   geometric mean of the anchor kernel's records in the SAME
                   dataset — before comparing. Machine speed cancels, so a
                   baseline recorded on one machine gates runs on another.
                   What remains is each kernel's cost *relative to* the
                   anchor, which is what a code change shifts.
  absolute         Raw ns_per_iter comparison. Only meaningful when baseline
                   and fresh run on the same machine (e.g. a dedicated perf
                   runner).

Records are keyed by (kernel, degree, backend, threads). Keys present in only
one dataset are reported but not fatal (sweeps evolve); zero overlapping keys
is a structural error. The committed baseline is serial-focused (CI containers
often expose one core), so --only-backend serial is the normal CI invocation;
multi-thread scaling is gated separately by the bench-smoke job.

--require-speedup TUNED:REF:DEGREE:MINRATIO asserts, WITHIN the fresh sweep,
that kernel TUNED is at least MINRATIO× faster than kernel REF at DEGREE on
the serial backend (e.g. BM_AxHelmholtz:BM_AxHelmholtzRef:7:1.0 — the tuned
ax kernel must not lose to the pinned scalar reference at the paper's
production order). This is a same-machine, same-run comparison, so it is
exact in either mode.

Exit codes: 0 pass, 1 regression (or failed speedup), 2 structural problem
(missing/unreadable file, no overlapping records, missing anchor records).
"""

import argparse
import json
import math
import sys


def load_records(path, only_backend=None):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"felis-perfgate: cannot read {path}: {e}", file=sys.stderr)
        return None
    records = {}
    for rec in data:
        if only_backend and rec.get("backend") != only_backend:
            continue
        key = (rec["kernel"], rec["degree"], rec["backend"], rec["threads"])
        ns = rec.get("ns_per_iter", 0.0)
        if ns > 0:
            records[key] = ns
    return records


def anchor_value(records, anchor_kernel):
    """Geometric mean ns_per_iter of the anchor kernel's records."""
    vals = [ns for (k, _, _, _), ns in records.items() if k == anchor_kernel]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def parse_tol_overrides(items):
    out = {}
    for item in items or []:
        kernel, _, tol = item.partition("=")
        if not tol:
            raise ValueError(f"bad --tol-kernel '{item}' (want KERNEL=TOL)")
        out[kernel] = float(tol)
    return out


def key_str(key):
    kernel, degree, backend, threads = key
    return f"{kernel}/deg{degree}/{backend}/{threads}t"


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_kernels.json")
    ap.add_argument("--fresh", required=True,
                    help="freshly produced BENCH_kernels.json")
    ap.add_argument("--mode", choices=("ratio", "absolute"), default="ratio")
    ap.add_argument("--anchor", default="BM_AxHelmholtzRef",
                    help="anchor kernel for ratio mode (default: "
                         "%(default)s — the pinned scalar reference)")
    ap.add_argument("--tol", type=float, default=0.30,
                    help="default tolerance band: fresh may exceed baseline "
                         "by this fraction (default %(default)s). Negative "
                         "values force failures — used by CI to prove the "
                         "gate can fail.")
    ap.add_argument("--tol-kernel", action="append", metavar="KERNEL=TOL",
                    help="per-kernel tolerance override (repeatable)")
    ap.add_argument("--only-backend", default=None,
                    help="restrict the comparison to one backend "
                         "(CI uses 'serial')")
    ap.add_argument("--require-speedup", action="append",
                    metavar="TUNED:REF:DEGREE:MINRATIO",
                    help="assert TUNED >= MINRATIO x faster than REF at "
                         "DEGREE (serial, within the fresh sweep; "
                         "repeatable)")
    args = ap.parse_args(argv)

    try:
        overrides = parse_tol_overrides(args.tol_kernel)
    except ValueError as e:
        print(f"felis-perfgate: {e}", file=sys.stderr)
        return 2

    baseline = load_records(args.baseline, args.only_backend)
    fresh = load_records(args.fresh, args.only_backend)
    if baseline is None or fresh is None:
        return 2

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("felis-perfgate: no overlapping records between baseline and "
              "fresh sweep", file=sys.stderr)
        return 2
    for key in sorted(set(baseline) - set(fresh)):
        print(f"note: baseline-only record {key_str(key)} (not compared)")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"note: fresh-only record {key_str(key)} (not compared)")

    if args.mode == "ratio":
        base_anchor = anchor_value(baseline, args.anchor)
        fresh_anchor = anchor_value(fresh, args.anchor)
        if base_anchor is None or fresh_anchor is None:
            print(f"felis-perfgate: anchor kernel '{args.anchor}' missing "
                  "from baseline or fresh sweep (required in ratio mode)",
                  file=sys.stderr)
            return 2
    else:
        base_anchor = fresh_anchor = 1.0

    header = (f"{'record':<42} {'baseline':>10} {'fresh':>10} "
              f"{'delta':>8} {'tol':>6}  verdict")
    print(header)
    print("-" * len(header))
    failures = 0
    for key in shared:
        kernel = key[0]
        tol = overrides.get(kernel, args.tol)
        base_norm = baseline[key] / base_anchor
        fresh_norm = fresh[key] / fresh_anchor
        delta = fresh_norm / base_norm - 1.0
        ok = delta <= tol
        if not ok:
            failures += 1
        print(f"{key_str(key):<42} {base_norm:>10.4g} {fresh_norm:>10.4g} "
              f"{delta:>+7.1%} {tol:>6.0%}  {'ok' if ok else 'REGRESSION'}")

    for spec in args.require_speedup or []:
        parts = spec.split(":")
        if len(parts) != 4:
            print(f"felis-perfgate: bad --require-speedup '{spec}' "
                  "(want TUNED:REF:DEGREE:MINRATIO)", file=sys.stderr)
            return 2
        tuned, ref, degree, min_ratio = (
            parts[0], parts[1], int(parts[2]), float(parts[3]))
        tuned_key = (tuned, degree, "serial", 1)
        ref_key = (ref, degree, "serial", 1)
        if tuned_key not in fresh or ref_key not in fresh:
            print(f"felis-perfgate: speedup check needs {key_str(tuned_key)} "
                  f"and {key_str(ref_key)} in the fresh sweep",
                  file=sys.stderr)
            return 2
        ratio = fresh[ref_key] / fresh[tuned_key]
        ok = ratio >= min_ratio
        if not ok:
            failures += 1
        print(f"speedup {tuned} vs {ref} @ degree {degree}: {ratio:.3f}x "
              f"(required >= {min_ratio:.2f}x)  "
              f"{'ok' if ok else 'TOO SLOW'}")

    if failures:
        print(f"felis-perfgate: {failures} check(s) FAILED.")
        return 1
    print(f"felis-perfgate: {len(shared)} record(s) within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
