#!/usr/bin/env python3
"""Gate a finished validation-matrix campaign against its encoded references.

    felis_validate.py <campaign.txt> --dir <campaign_dir> [--min-types N]

Reads the campaign file's validation.* keys:

    validation.nu.<type>   reference nu_volume for that case type
    validation.nu_tol      |nu_volume - reference| tolerance (default 0.05)
    validation.consistency |nu_plate - nu_volume| tolerance, scaled by
                           max(1, |nu_volume|)        (default 0.05)

and checks, against <campaign_dir>/manifest.ndjson and nu_ra.csv:

  1. every campaign case reached final state `done` in the manifest;
  2. every done case has a CSV row;
  3. the matrix exercised at least --min-types distinct case types (default 3);
  4. per case: nu_volume within tolerance of its type's reference, and the
     two independent Nusselt measurements agree (plate vs volume — the
     Kooij-style cross-check that catches broken BCs/forcing/observables).

Exit 0 when everything passes, 1 otherwise (each violation is printed).
"""
from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path


def parse_params(text: str) -> dict[str, str]:
    """Parse felis ParamMap syntax: `key = value` statements separated by
    newlines or ';', `#` comments to end of line, blanks ignored."""
    params: dict[str, str] = {}
    for line in text.replace(";", "\n").splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            continue
        key, value = line.split("=", 1)
        params[key.strip()] = value.strip()
    return params


def final_states(manifest_path: Path) -> tuple[dict[str, str], set[str]]:
    """Last recorded state per case, plus the declared case set."""
    states: dict[str, str] = {}
    declared: set[str] = set()
    with manifest_path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail is legal in a crash-safe NDJSON log
            if record.get("type") == "case":
                declared.add(record["case"])
            elif record.get("type") == "run":
                states[record["case"]] = record["state"]
    return states, declared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("campaign", help="campaign file with validation.* keys")
    parser.add_argument("--dir", required=True,
                        help="campaign directory (manifest.ndjson, nu_ra.csv)")
    parser.add_argument("--min-types", type=int, default=3,
                        help="minimum distinct case types (default 3)")
    args = parser.parse_args()

    params = parse_params(Path(args.campaign).read_text())
    references = {key[len("validation.nu."):]: float(value)
                  for key, value in params.items()
                  if key.startswith("validation.nu.")}
    nu_tol = float(params.get("validation.nu_tol", "0.05"))
    consistency = float(params.get("validation.consistency", "0.05"))
    if not references:
        print(f"{args.campaign}: no validation.nu.<type> references encoded")
        return 1

    campaign_dir = Path(args.dir)
    manifest = campaign_dir / "manifest.ndjson"
    summary = campaign_dir / "nu_ra.csv"
    problems: list[str] = []
    for required in (manifest, summary):
        if not required.is_file():
            problems.append(f"missing artifact: {required}")
    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return 1

    states, declared = final_states(manifest)
    for case in sorted(declared):
        state = states.get(case, "absent")
        if state != "done":
            problems.append(f"{case}: final manifest state '{state}', not 'done'")

    with summary.open() as fh:
        rows = [row for row in csv.DictReader(
            line for line in fh if not line.startswith("#"))]
    rows_by_case = {row["case"]: row for row in rows}
    for case in sorted(declared):
        if states.get(case) == "done" and case not in rows_by_case:
            problems.append(f"{case}: done but missing from {summary.name}")

    types_seen = {row["type"] for row in rows}
    if len(types_seen) < args.min_types:
        problems.append(
            f"only {len(types_seen)} distinct case type(s) in the summary "
            f"({', '.join(sorted(types_seen)) or 'none'}); "
            f"need >= {args.min_types}")

    for row in rows:
        case, ctype = row["case"], row["type"]
        if ctype not in references:
            problems.append(f"{case}: no validation.nu.{ctype} reference")
            continue
        nu_volume = float(row["nu_volume"])
        nu_plate = float(row["nu_plate"])
        reference = references[ctype]
        if abs(nu_volume - reference) > nu_tol:
            problems.append(
                f"{case} ({ctype}): nu_volume {nu_volume:.6g} deviates from "
                f"reference {reference:.6g} by more than {nu_tol:g}")
        if abs(nu_plate - nu_volume) > consistency * max(1.0, abs(nu_volume)):
            problems.append(
                f"{case} ({ctype}): nu_plate {nu_plate:.6g} vs nu_volume "
                f"{nu_volume:.6g} disagree beyond {consistency:g} "
                f"(plate-vs-volume consistency)")

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        print(f"felis_validate: {len(problems)} problem(s)")
        return 1
    print(f"felis_validate: {len(rows)} case(s), "
          f"{len(types_seen)} type(s) ({', '.join(sorted(types_seen))}), "
          f"all within tolerance (nu_tol {nu_tol:g}, "
          f"consistency {consistency:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
