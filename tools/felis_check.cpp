// felis_check — exhaustive explicit-state model checking of the crash-safety
// protocols (see src/verify/ and DESIGN.md §11).
//
//   felis_check --all                    check every protocol model at the
//                                        documented bounds (CI gate)
//   felis_check --model manifest [opts]  manifest state machine + crash /
//                                        torn-tail / duplicate faults
//   felis_check --model checkpoint [opts]
//                                        checkpoint rotation/retry/recovery
//                                        + fail-write/truncate/corrupt/crash
//   felis_check --model spool [opts]     service spool admission protocol:
//                                        decision/enqueue/archive/unlink with
//                                        torn appends and seeded-bug modes
//   --expect-violation                   succeed only if a counterexample is
//                                        found (and print it) — used to
//                                        demonstrate e.g. the fault_budget >=
//                                        keep rotation hazard
//
// Exit codes: 0 = invariants hold (or expected violation found), 1 =
// counterexample found (trace printed) or expected violation absent, 2 =
// usage error, 3 = state space not exhausted within --max-states.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "verify/checker.hpp"
#include "verify/checkpoint_model.hpp"
#include "verify/manifest_model.hpp"
#include "verify/spool_model.hpp"

namespace {

using felis::usize;
using felis::verify::CheckResult;

void print_trace(const CheckResult& result) {
  std::cout << "counterexample (" << result.trace.size() - 1
            << " transitions):\n";
  for (usize i = 0; i < result.trace.size(); ++i) {
    std::cout << "  [" << i << "] " << result.trace[i].action << "\n";
    std::istringstream dump(result.trace[i].state);
    std::string line;
    while (std::getline(dump, line)) std::cout << "      " << line << "\n";
  }
  std::cout << "violated invariant: " << result.violation << "\n";
}

/// Report one model run. Returns the process exit code contribution.
int report(const std::string& name, const std::string& bounds,
           const CheckResult& result, bool expect_violation) {
  std::cout << "model '" << name << "' (" << bounds << "):\n";
  std::cout << "  explored " << result.stats.states << " states, "
            << result.stats.transitions << " transitions, depth "
            << result.stats.depth
            << (result.complete ? " (exhaustive)" : " (TRUNCATED)") << "\n";
  if (!result.complete && result.ok) {
    std::cout << "  ERROR: state space not exhausted; raise --max-states\n";
    return 3;
  }
  if (expect_violation) {
    if (result.ok) {
      std::cout << "  ERROR: expected an invariant violation, found none\n";
      return 1;
    }
    std::cout << "  expected violation found:\n";
    print_trace(result);
    return 0;
  }
  if (!result.ok) {
    print_trace(result);
    return 1;
  }
  std::cout << "  invariants hold.\n";
  return 0;
}

struct Cli {
  std::string model;  // "", "manifest", "checkpoint", "spool"
  bool all = false;
  bool expect_violation = false;
  usize max_states = 4000000;
  felis::verify::ManifestModelOptions manifest;
  felis::verify::CheckpointModelOptions checkpoint;
  felis::verify::SpoolModelOptions spool;
};

int check_manifest(const Cli& cli) {
  const felis::verify::ManifestModel model(cli.manifest);
  const auto& o = model.options();
  std::ostringstream bounds;
  bounds << o.cases << " cases, " << o.workers << " workers, budget "
         << o.thread_budget << ", retries " << o.max_retries << ", failures "
         << o.max_total_failures << ", sessions " << o.max_sessions
         << ", torn tails " << (o.torn_tails ? "on" : "off")
         << ", duplicate faults " << (o.duplicate_faults ? "on" : "off");
  return report("manifest", bounds.str(),
                felis::verify::check(model, cli.max_states),
                cli.expect_violation);
}

int check_checkpoint(const Cli& cli) {
  const felis::verify::CheckpointModel model(cli.checkpoint);
  const auto& o = model.options();
  std::ostringstream bounds;
  bounds << o.steps << " steps, keep " << o.keep << ", retries "
         << o.max_retries << ", fault budget " << o.fault_budget;
  return report("checkpoint", bounds.str(),
                felis::verify::check(model, cli.max_states),
                cli.expect_violation);
}

int check_spool(const Cli& cli) {
  const felis::verify::SpoolModel model(cli.spool);
  const auto& o = model.options();
  std::ostringstream bounds;
  bounds << o.submissions << " submissions, rejects "
         << (o.rejects ? "on" : "off") << ", torn appends "
         << (o.torn_appends ? "on" : "off");
  if (o.buggy_unlink_before_archive) bounds << ", BUG unlink-before-archive";
  if (o.buggy_skip_decided_check) bounds << ", BUG skip-decided-check";
  return report("spool", bounds.str(),
                felis::verify::check(model, cli.max_states),
                cli.expect_violation);
}

int run_all(const Cli& cli) {
  // The documented bounds (DESIGN.md §11): >= 3 cases on >= 2 workers with a
  // binding thread budget, a crash at every journalled point with the full
  // torn-tail menu, duplicate stale-terminal faults; >= 2 retained
  // checkpoints with every fault the injector knows. Plus the demonstrated
  // rotation hazard at fault_budget == keep.
  int rc = 0;
  Cli manifest = cli;
  manifest.expect_violation = false;
  rc |= check_manifest(manifest);

  Cli checkpoint = cli;
  checkpoint.expect_violation = false;
  rc |= check_checkpoint(checkpoint);

  Cli hazard = cli;
  hazard.checkpoint.fault_budget = hazard.checkpoint.keep;
  hazard.expect_violation = true;
  std::cout << "\n(the next run demonstrates the documented rotation hazard "
               "at fault budget == keep)\n";
  rc |= check_checkpoint(hazard);

  Cli spool = cli;
  spool.expect_violation = false;
  rc |= check_spool(spool);

  Cli bug1 = cli;
  bug1.spool.buggy_unlink_before_archive = true;
  bug1.expect_violation = true;
  std::cout << "\n(the next run demonstrates why the spool unlink must wait "
               "for the archive + enqueued case)\n";
  rc |= check_spool(bug1);

  Cli bug2 = cli;
  bug2.spool.buggy_skip_decided_check = true;
  bug2.expect_violation = true;
  std::cout << "\n(the next run demonstrates why admission re-checks the "
               "folded decision before journalling)\n";
  rc |= check_spool(bug2);
  return rc;
}

int usage() {
  std::cout
      << "usage: felis_check --all | --model manifest|checkpoint|spool "
         "[options]\n"
         "  common:   --max-states N   --expect-violation\n"
         "  manifest: --cases N --workers N --budget N --retries N\n"
         "            --failures N --sessions N --no-torn --no-duplicates\n"
         "  checkpoint: --steps N --keep N --ckpt-retries N --faults N\n"
         "              --no-monotonic\n"
         "  spool: --submissions N --no-rejects --no-spool-torn\n"
         "         --spool-bug-unlink --spool-bug-redecide\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  const auto int_arg = [&](int& i, const char* what) {
    if (i + 1 >= argc) {
      std::cout << "missing value for " << what << "\n";
      std::exit(2);
    }
    return std::stoi(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") cli.all = true;
    else if (arg == "--model") {
      if (i + 1 >= argc) return usage();
      cli.model = argv[++i];
    } else if (arg == "--expect-violation") cli.expect_violation = true;
    else if (arg == "--max-states")
      cli.max_states = static_cast<usize>(int_arg(i, "--max-states"));
    else if (arg == "--cases") cli.manifest.cases = int_arg(i, arg.c_str());
    else if (arg == "--workers") cli.manifest.workers = int_arg(i, arg.c_str());
    else if (arg == "--budget")
      cli.manifest.thread_budget = int_arg(i, arg.c_str());
    else if (arg == "--retries")
      cli.manifest.max_retries = int_arg(i, arg.c_str());
    else if (arg == "--failures")
      cli.manifest.max_total_failures = int_arg(i, arg.c_str());
    else if (arg == "--sessions")
      cli.manifest.max_sessions = int_arg(i, arg.c_str());
    else if (arg == "--no-torn") cli.manifest.torn_tails = false;
    else if (arg == "--no-duplicates") cli.manifest.duplicate_faults = false;
    else if (arg == "--steps") cli.checkpoint.steps = int_arg(i, arg.c_str());
    else if (arg == "--keep") cli.checkpoint.keep = int_arg(i, arg.c_str());
    else if (arg == "--ckpt-retries")
      cli.checkpoint.max_retries = int_arg(i, arg.c_str());
    else if (arg == "--faults")
      cli.checkpoint.fault_budget = int_arg(i, arg.c_str());
    else if (arg == "--no-monotonic") cli.checkpoint.check_monotonic = false;
    else if (arg == "--submissions")
      cli.spool.submissions = int_arg(i, arg.c_str());
    else if (arg == "--no-rejects") cli.spool.rejects = false;
    else if (arg == "--no-spool-torn") cli.spool.torn_appends = false;
    else if (arg == "--spool-bug-unlink")
      cli.spool.buggy_unlink_before_archive = true;
    else if (arg == "--spool-bug-redecide")
      cli.spool.buggy_skip_decided_check = true;
    else if (arg == "--help" || arg == "-h") return usage();
    else {
      std::cout << "unknown argument: " << arg << "\n";
      return usage();
    }
  }

  try {
    if (cli.all) return run_all(cli);
    if (cli.model == "manifest") return check_manifest(cli);
    if (cli.model == "checkpoint") return check_checkpoint(cli);
    if (cli.model == "spool") return check_spool(cli);
    return usage();
  } catch (const std::exception& err) {
    std::cout << "felis_check: " << err.what() << "\n";
    return 2;
  }
}
