#!/usr/bin/env python3
"""felis-trace: validate and summarize felis telemetry artifacts.

A felis run with `telemetry.enabled = true` produces
  <dir>/<basename>.ndjson       one JSON record per line: a `header` record
                                (schema + run metadata) followed by `step`
                                records with the full metric snapshot;
  <dir>/<basename>.trace.json   a Chrome trace_event file merging the
                                Profiler region timeline and the stream
                                TraceRecorder intervals on one clock, with
                                step boundaries as instant events;
  <dir>/<basename>.summary.csv  final metric summary (kind/value/count/...).

The NDJSON stream uses crash-safe appends: every fsync'd prefix is a valid
record stream, and a crash can leave at most one torn final line. Like the
in-tree follower (src/obs/ndjson_follower.*), this tool treats a line as
complete only once its trailing newline is on disk: an unterminated final
line is skipped (with a note) even when it happens to parse as JSON. A
missing stream file is a named error, never a traceback.

A campaign run (felis_campaign / sched::Scheduler) produces
  <campaign.dir>/manifest.ndjson   the crash-safe run journal: a `header`
                                   record, one `case` record per expanded
                                   sweep case, then `run` state transitions
                                   (queued -> running -> done/failed/retried,
                                   plus running -> preempted -> queued under
                                   service-mode preemption) and `resume`
                                   markers appended by later sessions. A
                                   service-mode daemon (felis_campaign
                                   --serve) additionally journals `submit`
                                   admission decisions and the `case` records
                                   of cases submitted after the header, so
                                   the case count may exceed the header's. A
                                   resume session heals a torn tail by
                                   terminating it, so the journal may contain
                                   newline-terminated malformed lines
                                   mid-stream; the manifest reader skips and
                                   counts them, exactly like the C++ fold.
  <campaign.dir>/campaign.trace.json  (felis_campaign --export-trace) the
                                   merged fleet trace: each case on its own
                                   track plus the scheduler's queue timeline
                                   (otherData carries "merged":"campaign").

Usage
-----
  felis_trace.py --check <run.ndjson> [<run.trace.json>]
  felis_trace.py --check <campaign.trace.json>
      Validate the artifacts (exit 1 on any structural problem). A lone
      *.trace.json argument checks just the trace; a merged campaign trace
      is validated against the campaign contract (sched + step categories).
  felis_trace.py --summary <run.ndjson>
      Print a human-readable run summary from the metrics stream.
  felis_trace.py --campaign <manifest.ndjson>
      Validate a campaign manifest: header-first schema, every run record
      referencing a declared case, legal state transitions, monotone attempt
      numbers. Prints the per-case final states (exit 1 on violations).
"""

import argparse
import json
import sys

# Fields every step record's metric snapshot must contain (the acceptance
# contract of the telemetry layer: iteration counts, residuals, Nu, CFL and
# checkpoint statistics are always present, even when zero).
REQUIRED_METRICS = (
    "solver.cfl",
    "solver.pressure_iterations",
    "solver.velocity_iterations",
    "solver.pressure_residual",
    "case.nu_volume",
    "checkpoint.writes",
    "checkpoint.retries",
    "health.anomalies",
    "health.flags.iteration_spike",
    "health.flags.residual_stagnation",
    "health.flags.checkpoint_retry",
)

REQUIRED_METADATA = ("backend", "threads", "degree")

# A merged campaign trace (felis_campaign --export-trace) has a different
# contract: scheduler + per-case step events, campaign metadata.
CAMPAIGN_TRACE_CATS = ("sched", "step")
CAMPAIGN_TRACE_METADATA = ("campaign", "cases", "workers")


class CheckError(Exception):
    pass


def read_journal_lines(path):
    """Read a crash-safe NDJSON journal the way NdjsonFollower does: a line
    is complete only once its trailing newline is on disk, so an
    unterminated final line is a torn tail and is withheld regardless of
    whether it happens to parse. Returns (lines, torn_tail); raises a named
    CheckError (not a bare traceback) when the file is missing."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
    except FileNotFoundError:
        raise CheckError(f"{path}: stream file not found")
    except IsADirectoryError:
        raise CheckError(f"{path}: is a directory, not a stream file")
    lines = raw.split("\n")
    torn_tail = False
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline leaves one empty final element
    elif lines and lines[-1] != "":
        lines.pop()  # unterminated tail: crash-interrupted append
        torn_tail = True
    return lines, torn_tail


def read_ndjson(path):
    """Parse the metrics stream; returns (header, steps, torn_tail)."""
    lines, torn_tail = read_journal_lines(path)
    header = None
    steps = []
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # Telemetry truncates its stream at run start, so unlike the
            # manifest it can never contain a healed torn line mid-stream.
            raise CheckError(f"{path}:{i + 1}: malformed JSON mid-stream")
        if not isinstance(record, dict) or "type" not in record:
            raise CheckError(f"{path}:{i + 1}: record has no 'type' field")
        if record["type"] == "header":
            if i != 0:
                raise CheckError(f"{path}:{i + 1}: header record not first")
            header = record
        elif record["type"] == "step":
            steps.append((i + 1, record))
        else:
            raise CheckError(
                f"{path}:{i + 1}: unknown record type {record['type']!r}")
    return header, steps, torn_tail


def check_ndjson(path):
    header, steps, torn_tail = read_ndjson(path)
    if header is None:
        raise CheckError(f"{path}: missing header record")
    metadata = header.get("metadata")
    if not isinstance(metadata, dict):
        raise CheckError(f"{path}: header has no metadata object")
    for key in REQUIRED_METADATA:
        if key not in metadata:
            raise CheckError(
                f"{path}: header metadata missing {key!r} "
                "(needed to join against BENCH_*.json)")
    if not steps:
        raise CheckError(f"{path}: no step records")
    prev_step = None
    for lineno, record in steps:
        for field in ("step", "time", "wall_seconds", "metrics"):
            if field not in record:
                raise CheckError(f"{path}:{lineno}: step record missing {field!r}")
        metrics = record["metrics"]
        if not isinstance(metrics, dict):
            raise CheckError(f"{path}:{lineno}: metrics is not an object")
        for name in REQUIRED_METRICS:
            if name not in metrics:
                raise CheckError(
                    f"{path}:{lineno}: metrics missing {name!r}")
        if prev_step is not None and record["step"] <= prev_step:
            raise CheckError(
                f"{path}:{lineno}: step {record['step']} not monotonically "
                f"increasing (previous {prev_step})")
        prev_step = record["step"]
    return header, steps, torn_tail


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            raise CheckError(f"{path}: not valid JSON: {e}")
    if "traceEvents" not in trace:
        raise CheckError(f"{path}: missing traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise CheckError(f"{path}: traceEvents is not an array")
    cats = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise CheckError(f"{path}: traceEvents[{i}] is not an object")
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            raise CheckError(f"{path}: traceEvents[{i}] has unexpected ph {ph!r}")
        if ph == "X":
            for field in ("name", "cat", "ts", "dur", "pid", "tid"):
                if field not in e:
                    raise CheckError(
                        f"{path}: traceEvents[{i}] (ph=X) missing {field!r}")
            if e["ts"] < 0 or e["dur"] < 0:
                raise CheckError(
                    f"{path}: traceEvents[{i}] has negative ts/dur")
        if ph == "i" and "ts" not in e:
            raise CheckError(f"{path}: traceEvents[{i}] (ph=i) missing ts")
        if "cat" in e:
            cats.add(e["cat"])
    if "otherData" not in trace or not isinstance(trace["otherData"], dict):
        raise CheckError(f"{path}: missing otherData metadata object")
    other = trace["otherData"]
    if other.get("merged") == "campaign":
        # Merged fleet trace: scheduler queue/transition events plus per-case
        # step marks, with campaign-level metadata.
        for cat in CAMPAIGN_TRACE_CATS:
            if cat not in cats:
                raise CheckError(
                    f"{path}: no events with cat={cat!r} — a merged campaign "
                    "trace must contain scheduler events and step marks")
        for key in CAMPAIGN_TRACE_METADATA:
            if key not in other:
                raise CheckError(f"{path}: otherData missing {key!r}")
        return events, cats
    # The single-run contract: profiler regions AND stream intervals on one
    # timeline, with step boundaries marked.
    for cat in ("profiler", "stream", "step"):
        if cat not in cats:
            raise CheckError(
                f"{path}: no events with cat={cat!r} — the merged timeline "
                "must contain profiler regions, stream intervals and step marks")
    for key in REQUIRED_METADATA:
        if key not in other:
            raise CheckError(f"{path}: otherData missing {key!r}")
    return events, cats


def print_trace_ok(path, events, cats):
    print(f"{path}: OK ({len(events)} trace events, "
          f"categories: {', '.join(sorted(cats))})")


def cmd_check(paths):
    if len(paths) == 1 and paths[0].endswith(".trace.json"):
        # Lone trace check (the campaign's merged trace has no companion
        # NDJSON stream of its own).
        events, cats = check_trace(paths[0])
        print_trace_ok(paths[0], events, cats)
        return 0
    ndjson_path = paths[0]
    header, steps, torn_tail = check_ndjson(ndjson_path)
    print(f"{ndjson_path}: OK ({len(steps)} step records, "
          f"schema {header.get('schema')}"
          + (", torn final line tolerated" if torn_tail else "") + ")")
    if len(paths) > 1:
        events, cats = check_trace(paths[1])
        print_trace_ok(paths[1], events, cats)
    return 0


CAMPAIGN_SCHEMA = "felis-campaign-1"
RUN_STATES = ("queued", "running", "done", "failed", "retried", "preempted")
# Legal per-case transitions within one scheduler session. A resume session
# additionally re-queues every non-done case (including one left "running"
# by a kill), which is legal only after a `resume` record has been seen.
# "preempted" is the service-mode checkpoint-boundary eviction: the attempt
# ends, the case goes straight back to the queue.
CAMPAIGN_TRANSITIONS = {
    None: {"queued"},
    "queued": {"running"},
    "running": {"done", "failed", "retried", "preempted"},
    "retried": {"queued"},
    "preempted": {"queued"},
    "failed": set(),
    "done": set(),
}

# Spool admission decisions (manifest `submit` records, service mode).
# "deferred" is non-terminal: a later record may admit or reject; a second
# decision after a terminal one is the double-admit the C++ fold refuses.
SUBMIT_TERMINAL = ("admitted", "rejected")
SUBMIT_DECISIONS = ("admitted", "rejected", "deferred")


def read_campaign_manifest(path):
    """Parse the manifest; returns (records, torn_tail, healed) where
    records is a list of (lineno, dict). A resume session's writer heals a
    torn tail by terminating it with a newline, so the journal may contain
    complete-but-malformed lines mid-stream; like the C++ fold
    (sched::apply_manifest_line ignores them), they are skipped and counted
    in `healed`, never fatal."""
    lines, torn_tail = read_journal_lines(path)
    records = []
    healed = 0
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            healed += 1
            continue
        if not isinstance(record, dict) or "type" not in record:
            raise CheckError(f"{path}:{i + 1}: record has no 'type' field")
        records.append((i + 1, record))
    return records, torn_tail, healed


def check_campaign(path):
    records, torn_tail, healed = read_campaign_manifest(path)
    if not records:
        raise CheckError(f"{path}: empty manifest")
    lineno, header = records[0]
    if header["type"] != "header":
        raise CheckError(f"{path}:{lineno}: first record is not a header")
    if header.get("schema") != CAMPAIGN_SCHEMA:
        raise CheckError(
            f"{path}:{lineno}: schema {header.get('schema')!r}, "
            f"expected {CAMPAIGN_SCHEMA!r}")
    for key in ("campaign", "cases", "workers", "thread_budget"):
        if key not in header:
            raise CheckError(f"{path}:{lineno}: header missing {key!r}")
    cases = {}        # id -> case record
    last_state = {}   # id -> last run state
    attempts = {}     # id -> highest attempt seen
    submissions = {}  # id -> last admission decision
    resumes = 0
    for lineno, record in records[1:]:
        rtype = record["type"]
        if rtype == "header":
            raise CheckError(f"{path}:{lineno}: duplicate header record")
        elif rtype == "case":
            for key in ("case", "threads", "steps", "cost_seconds"):
                if key not in record:
                    raise CheckError(
                        f"{path}:{lineno}: case record missing {key!r}")
            if record["case"] in cases:
                raise CheckError(
                    f"{path}:{lineno}: case {record['case']!r} declared twice")
            cases[record["case"]] = record
        elif rtype == "resume":
            if "pending" not in record:
                raise CheckError(f"{path}:{lineno}: resume missing 'pending'")
            resumes += 1
        elif rtype == "submit":
            for key in ("submission", "tenant", "priority", "decision",
                        "cases", "cost_seconds"):
                if key not in record:
                    raise CheckError(
                        f"{path}:{lineno}: submit record missing {key!r}")
            sid, decision = record["submission"], record["decision"]
            if decision not in SUBMIT_DECISIONS:
                raise CheckError(
                    f"{path}:{lineno}: unknown admission decision "
                    f"{decision!r}")
            prev = submissions.get(sid)
            if prev in SUBMIT_TERMINAL:
                raise CheckError(
                    f"{path}:{lineno}: duplicate decision for submission "
                    f"{sid!r} (journalled {prev!r}, then {decision!r})")
            submissions[sid] = decision
        elif rtype == "run":
            for key in ("case", "state", "attempt", "wall_seconds"):
                if key not in record:
                    raise CheckError(
                        f"{path}:{lineno}: run record missing {key!r}")
            cid, state = record["case"], record["state"]
            if cid not in cases:
                raise CheckError(
                    f"{path}:{lineno}: run record for undeclared case {cid!r}")
            if state not in RUN_STATES:
                raise CheckError(f"{path}:{lineno}: unknown state {state!r}")
            prev = last_state.get(cid)
            legal = CAMPAIGN_TRANSITIONS[prev]
            # A later session re-journals every surviving case as queued —
            # whatever non-done state the kill left behind.
            if resumes and prev != "done" and state == "queued":
                legal = legal | {"queued"}
            if state not in legal:
                raise CheckError(
                    f"{path}:{lineno}: illegal transition {prev!r} -> "
                    f"{state!r} for case {cid!r}")
            if record["attempt"] < attempts.get(cid, 1):
                raise CheckError(
                    f"{path}:{lineno}: attempt {record['attempt']} for case "
                    f"{cid!r} below previous {attempts[cid]}")
            attempts[cid] = record["attempt"]
            last_state[cid] = state
        else:
            raise CheckError(f"{path}:{lineno}: unknown record type {rtype!r}")
    if submissions:
        # Service mode: submissions add cases after the header was written,
        # so the header count is a floor, not an exact match.
        if len(cases) < header["cases"]:
            raise CheckError(
                f"{path}: header declares {header['cases']} cases, only "
                f"{len(cases)} case records found")
    elif len(cases) != header["cases"]:
        raise CheckError(
            f"{path}: header declares {header['cases']} cases, "
            f"{len(cases)} case records found")
    return (header, cases, last_state, attempts, submissions, resumes,
            torn_tail, healed)


def cmd_campaign(path):
    (header, cases, last_state, attempts, submissions, resumes, torn,
     healed) = check_campaign(path)
    counts = {}
    for cid in cases:
        counts.setdefault(last_state.get(cid, "declared"), []).append(cid)
    total_attempts = sum(attempts.values())
    notes = ""
    if torn:
        notes += ", torn final line tolerated"
    if healed:
        notes += f", {healed} healed torn line(s) skipped"
    print(f"{path}: OK (campaign {header['campaign']!r}, {len(cases)} cases, "
          f"{resumes} resume(s), {total_attempts} attempts" + notes + ")")
    if submissions:
        decided = {}
        for sid, decision in submissions.items():
            decided.setdefault(decision, []).append(sid)
        pairs = ", ".join(f"{d}={len(decided[d])}"
                          for d in SUBMIT_DECISIONS if d in decided)
        print(f"  submissions: {len(submissions)} ({pairs})")
    for state in ("done", "running", "queued", "retried", "preempted",
                  "failed", "declared"):
        ids = counts.get(state)
        if ids:
            print(f"  {state:9s} {len(ids):3d}  {', '.join(sorted(ids))}")
    return 0


def cmd_summary(path):
    header, steps, torn_tail = read_ndjson(path)
    if header is not None:
        meta = header.get("metadata", {})
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        print(f"run: {pairs}")
    if not steps:
        print("no step records")
        return 1
    first, last = steps[0][1], steps[-1][1]
    nsteps = len(steps)
    wall = last.get("wall_seconds", 0) - first.get("wall_seconds", 0)
    rate = (nsteps - 1) / wall if wall > 0 and nsteps > 1 else 0.0
    print(f"steps: {first['step']}..{last['step']} "
          f"({nsteps} records, {rate:.2f} steps/s)")
    m = last.get("metrics", {})

    def val(name):
        v = m.get(name)
        if isinstance(v, dict):
            return v.get("last", 0)
        return v if v is not None else 0

    print(f"final: CFL={val('solver.cfl'):.3f} "
          f"p_it={val('solver.pressure_iterations'):.0f} "
          f"p_res={val('solver.pressure_residual'):.3e} "
          f"Nu={val('case.nu_volume'):.4f}")
    print(f"checkpoints: writes={val('checkpoint.writes'):.0f} "
          f"retries={val('checkpoint.retries'):.0f}")
    if torn_tail:
        print("note: torn final line (crash-interrupted append) skipped")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="validate artifacts, exit 1 on problems")
    mode.add_argument("--summary", action="store_true",
                      help="print a run summary from the NDJSON stream")
    mode.add_argument("--campaign", action="store_true",
                      help="validate a campaign manifest.ndjson")
    parser.add_argument("paths", nargs="+",
                        help="run.ndjson [run.trace.json] | manifest.ndjson")
    args = parser.parse_args()
    try:
        if args.check:
            return cmd_check(args.paths)
        if args.campaign:
            return cmd_campaign(args.paths[0])
        return cmd_summary(args.paths[0])
    except (CheckError, OSError) as e:
        print(f"felis-trace: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
