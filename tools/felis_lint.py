#!/usr/bin/env python3
"""felis-lint: repo-contract checks that compilers cannot express.

Rules
-----
  raw-abort           Library code (src/) must not call assert()/abort()/exit();
                      contract failures go through FELIS_CHECK / FELIS_ASSERT,
                      which throw felis::Error and never kill the process.
  stray-stdout        No std::cout / std::cerr / printf-family outside the
                      logger (src/common/logger.cpp). Rank-aware, levelled
                      output must flow through felis::Logger.
  pragma-once         Every header carries `#pragma once`.
  file-doc            Every header opens with a `/// \\file` doc block.
  using-namespace     No `using namespace` at header scope.
  include-order       In src/ .cpp files: the translation unit's own header is
                      included first; no duplicate includes; project headers
                      use quotes and system headers use angle brackets; each
                      contiguous run of same-style includes is sorted.
  build-artifacts     No build trees or compiler outputs tracked by git
                      (build*/ , *.o, CMakeCache.txt, bench JSON dumps, ...).
  raw-element-loop    Hot-path code (src/operators/, src/precon/, src/gs/)
                      must not iterate elements with a raw
                      `for (lidx_t e = 0; e < nelem; ...)` loop; dispatch
                      through device::Backend::parallel_for_blocked so every
                      backend (serial, OpenMP, future accelerators) executes
                      it. Chunk-callback loops (`for (lidx_t e = e0; ...)`)
                      are the sanctioned form and do not match.
  raw-ofstream        Output-producing code (src/io/, src/fluid/) must not
                      open std::ofstream directly: a crash mid-write leaves a
                      torn file at the final path. All durable output goes
                      through io::atomic_write_file / io::AtomicFileWriter
                      (tmp + fsync + rename), which is the single exempt
                      implementation site (src/io/atomic_file.*).
  raw-rename-fsync    Library code (src/) must not call rename()/fsync()
                      (POSIX, std::rename or std::filesystem::rename)
                      directly: the tmp + fsync + rename + directory-fsync
                      dance is easy to get subtly wrong (data hits disk after
                      the rename, torn tails glue onto resumed appends), and
                      the model checker only covers the sanctioned
                      implementations. All durable-write plumbing lives in
                      io::atomic_file.* and io::durable_append.*, the two
                      exempt sites.
  raw-clock           Library code (src/) must not read the clock directly
                      (steady_clock::now() and friends). Ad-hoc timing drifts
                      off the shared telemetry epoch and never reaches the
                      merged trace; time regions with Profiler and ad-hoc
                      durations with telemetry::Stopwatch. Exempt: the clock
                      owners themselves (common/profiler, device/stream,
                      device/autotune and src/telemetry/).
  case-registry       Scenario plugins are private to src/case/: outside it
                      (src/ and examples/), no file may include a plugin
                      header (case/rbc.hpp, case/ihc.hpp, ...) or name a
                      concrete case class (RbcSimulation,
                      InternallyHeatedSimulation). Hosts resolve `case.type`
                      through case/registry.hpp (cases::resolve_case) so new
                      scenarios need no host changes. tests/ and bench/ are
                      exempt by design: they exercise plugins directly.
  raw-thread          Library code (src/) must not spawn std::thread /
                      std::jthread directly: untracked threads bypass the
                      campaign scheduler's GCD-style thread budget and the
                      device backend's worker accounting, so concurrent cases
                      oversubscribe the host invisibly. Exempt: the sanctioned
                      concurrency owners (src/device/, src/comm/, src/insitu/,
                      src/sched/).
  raw-ndjson-read     Library code must not parse manifest/telemetry NDJSON
                      by hand: calls to sched::apply_manifest_line or the
                      sched::extract_json_* scanners are confined to the
                      protocol owner (src/sched/manifest.*), the campaign
                      monitor (src/obs/) and the model checker (src/verify/,
                      which drives the production fold by design). Ad-hoc
                      folds elsewhere drift from the torn-tail and
                      duplicate-terminal semantics the checker verifies.
  spool-confinement   The spool's on-disk layout (`spool/` directory,
                      `*.case` submission files, `ctl-*.cmd` control drops)
                      is private to src/svc/: outside it (src/, examples/),
                      no spool path literal may appear. Clients submit
                      through svc::submit_text / svc::request_control and
                      the service admits through svc::admit_spool_file,
                      so the crash-safety protocol the spool model verifies
                      has exactly one implementation. tests/ white-box the
                      layout by design and are exempt.
  raw-tensor-call     Library code outside src/field/ must not call the
                      tensor-product kernels (apply_axis0/1/2, grad_ref,
                      interp3) directly: direct calls pin the scalar reference
                      and silently bypass the autotuned variant selection.
                      Dispatch through the operators::Context kernel table
                      (ctx.kern().axis0(...) etc.) or a field::TensorKernels
                      member. tests/ and bench/ are exempt by design: they
                      exercise and time the raw variants.

Usage
-----
  felis_lint.py --root <repo>      lint the tree (exit 1 on violations)
  felis_lint.py --self-test        seed one violation per rule into a scratch
                                   tree and verify each is caught (exit 1 if
                                   any rule fails to fire)
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

HEADER_DIRS = ("src", "tests", "bench", "examples")
LIBRARY_DIR = "src"
STDOUT_EXEMPT = {os.path.join("src", "common", "logger.cpp")}
HOT_PATH_DIRS = (
    os.path.join("src", "operators"),
    os.path.join("src", "precon"),
    os.path.join("src", "gs"),
)
DURABLE_OUTPUT_DIRS = (
    os.path.join("src", "io"),
    os.path.join("src", "fluid"),
)
OFSTREAM_EXEMPT = {
    os.path.join("src", "io", "atomic_file.hpp"),
    os.path.join("src", "io", "atomic_file.cpp"),
    os.path.join("src", "io", "durable_append.hpp"),
    os.path.join("src", "io", "durable_append.cpp"),
}
# The only files allowed to touch rename()/fsync() directly: the atomic-write
# helper (tmp + fsync + rename) and the durable append journal (fsync'd
# in-place growth). Everything else goes through their APIs.
RENAME_FSYNC_EXEMPT = {
    os.path.join("src", "io", "atomic_file.hpp"),
    os.path.join("src", "io", "atomic_file.cpp"),
    os.path.join("src", "io", "durable_append.hpp"),
    os.path.join("src", "io", "durable_append.cpp"),
}
# Sanctioned clock owners: the profiler (region timing), the stream trace
# recorder and autotuner (device-side timing), and the telemetry layer that
# provides the shared epoch everyone else must inherit.
CLOCK_EXEMPT = {
    os.path.join("src", "common", "profiler.hpp"),
    os.path.join("src", "common", "profiler.cpp"),
    os.path.join("src", "device", "stream.hpp"),
    os.path.join("src", "device", "stream.cpp"),
    os.path.join("src", "device", "autotune.hpp"),
    os.path.join("src", "device", "autotune.cpp"),
}
CLOCK_EXEMPT_DIRS = (os.path.join("src", "telemetry"),)
# Sanctioned thread owners: the device backends (worker pools), the
# threads-as-ranks communicator, the in-situ consumer, the campaign
# scheduler (whose whole job is budgeted thread accounting), and the
# campaign service (whose spool poller rides alongside the scheduler it
# owns).
THREAD_EXEMPT_DIRS = (
    os.path.join("src", "device"),
    os.path.join("src", "comm"),
    os.path.join("src", "insitu"),
    os.path.join("src", "sched"),
    os.path.join("src", "svc"),
)
# The case-registry rule's scope: library and host code. tests/ and bench/
# deliberately excluded — they white-box the plugins.
CASE_PLUGIN_DIRS = ("src", "examples")
CASE_PLUGIN_EXEMPT_PREFIX = "src/case/"
# NDJSON protocol readers: the manifest owner defines the fold, the campaign
# monitor consumes it, the model checker exercises it by design, and the
# campaign service resumes half-admitted submissions off the folded journal.
# Everyone else gets read_manifest() / obs::CampaignMonitor.
NDJSON_READ_EXEMPT_PREFIXES = ("src/obs/", "src/verify/", "src/svc/")
NDJSON_READ_EXEMPT = {
    os.path.join("src", "sched", "manifest.hpp"),
    os.path.join("src", "sched", "manifest.cpp"),
}
# The spool layout's home: the only directory allowed to spell spool paths.
# Scope mirrors case-registry (library + hosts); tests/ white-box the layout.
SPOOL_CONFINE_DIRS = ("src", "examples")
SPOOL_CONFINE_EXEMPT_PREFIX = "src/svc/"
# The tensor kernels' home: the only library directory allowed to call
# apply_axis* / grad_ref / interp3 directly (definitions, variants, and the
# TensorKernels defaults live there).
TENSOR_CALL_EXEMPT_PREFIX = "src/field/"

RAW_ABORT_RE = re.compile(r"(?<![\w.])(assert|abort|exit)\s*\(")
STDOUT_RE = re.compile(r"std::cout|std::cerr|(?<![\w.])(printf|fprintf|puts)\s*\(")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
# A from-zero element loop: `for (lidx_t e = 0; e < nelem ...)` (any loop
# variable, bound spelled nelem / num_elements() / *.num_elements()). The
# blocked-dispatch chunk form starts at the chunk begin (e0), so it never
# starts at literal 0 and does not match.
RAW_ELEMENT_LOOP_RE = re.compile(
    r"for\s*\(\s*lidx_t\s+\w+\s*=\s*0\s*;\s*\w+\s*<\s*"
    r"[\w.\->]*(?:nelem\b|num_elements\s*\(\s*\))")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')
RAW_OFSTREAM_RE = re.compile(r"std::ofstream\b")
# Direct clock reads: std::chrono::steady_clock::now() and the other chrono
# clocks, plus the common `using Clock = ...; Clock::now()` alias idiom.
RAW_CLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock|\bClock)\s*::\s*now\s*\(")
RAW_THREAD_RE = re.compile(r"std::j?thread\b")
# Raw rename/fsync calls in any spelling: qualified (std::filesystem::rename,
# fs::rename, std::rename, ::fsync) or bare. Wrapper names (io::rename_file,
# fsync_path) do not match: the call paren must follow the function name
# immediately, and a bare name must not be preceded by an identifier
# character, `.` or `:` (so `rename_file(` and `x.rename(` stay clean while
# the qualified alternatives above catch the namespaced forms).
# Plugin-private case headers: anything under case/ except the public
# interface (case.hpp) and the registry itself.
CASE_PLUGIN_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s+"case/(?!case\.hpp|registry\.hpp)')
CASE_PLUGIN_TYPE_RE = re.compile(r"\b(RbcSimulation|InternallyHeatedSimulation)\b")
RAW_RENAME_FSYNC_RE = re.compile(
    r"(?:std\s*::\s*)?filesystem\s*::\s*rename\s*\(|"
    r"\b(?:std|fs)\s*::\s*rename\s*\(|"
    r"(?<![\w.:])(?:rename|fsync)\s*\(|"
    r"(?<![\w.])::\s*(?:rename|fsync)\s*\(")
# A raw NDJSON-protocol read: the fold entry point or a positional scanner,
# qualified or not. read_manifest() (the sanctioned whole-file fold) does not
# match.
RAW_NDJSON_READ_RE = re.compile(
    r"\b(?:sched\s*::\s*)?(apply_manifest_line|extract_json_string|"
    r"extract_json_number|extract_json_metrics)\s*\(")
# A spool path literal: a string that is exactly "spool", contains a spool/
# path component, names a *.case submission file, or spells a ctl-*.cmd
# control drop. Prose mentioning the spool ("Service-mode spool counters")
# has no path separator next to the word and does not match.
SPOOL_LITERAL_RE = re.compile(
    r'"(?:[^"\n]*/)?spool(?:/[^"\n]*)?"|'
    r'"[^"\n]*\.case"|'
    r'"[^"\n]*\bctl-[^"\n]*"')
# A direct tensor-kernel call: the kernel name immediately followed by an
# argument list. Variant names (apply_axis0_simd, grad_ref_fixed<...>) do not
# match — the suffix breaks the word boundary before `(` — and neither do
# table dispatches (kern.axis0(...)) or address-of uses (&apply_axis0).
RAW_TENSOR_CALL_RE = re.compile(
    r"(?<!&)\b(?:field\s*::\s*)?(apply_axis[012]|grad_ref|interp3)\s*\(")

TRACKED_ARTIFACT_RES = [
    re.compile(r"(^|/)build[^/]*/"),
    re.compile(r"\.(o|obj|a|so|dylib|gch|pch|exe|bin|out)$"),
    re.compile(r"(^|/)(CMakeCache\.txt|CMakeFiles/|CTestTestfile\.cmake|Testing/)"),
    re.compile(r"^bench/.*\.json$"),
    re.compile(r"(^|/)(\.DS_Store|.*\.swp|.*~)$"),
]


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text, keep_strings=False):
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay correct. A lexer-grade pass is overkill for
    lint purposes; this handles //, /* */, "..." and '...' including escapes.
    With keep_strings, literals survive (quotes included) so rules that match
    *inside* strings — e.g. spool path literals — still skip comments.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append('"' if keep_strings else " ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            keep = keep_strings and state == "string"
            if ch == "\\":
                out.append(text[i:i + 2] if keep else "  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append('"' if keep else " ")
                i += 1
                continue
            if keep:
                out.append(ch)
            else:
                out.append(" " if ch != "\n" else "\n")
        i += 1
    return "".join(out)


def iter_files(root, dirs, exts):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(x for x in dirnames if not x.startswith("."))
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in exts:
                    yield os.path.join(dirpath, fn)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


# ---- rule implementations ---------------------------------------------------


def check_raw_abort(root):
    out = []
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = RAW_ABORT_RE.search(line)
            if m:
                out.append(Violation(
                    rel(root, path), lineno, "raw-abort",
                    f"raw {m.group(1)}() in library code; use FELIS_CHECK / "
                    f"FELIS_ASSERT (they throw felis::Error, never abort)"))
    return out


def check_stray_stdout(root):
    out = []
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        if rel(root, path) in {p.replace(os.sep, "/") for p in STDOUT_EXEMPT}:
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if STDOUT_RE.search(line):
                out.append(Violation(
                    rel(root, path), lineno, "stray-stdout",
                    "direct stdout/stderr write in library code; route "
                    "through felis::Logger"))
    return out


def check_headers(root):
    out = []
    for path in iter_files(root, HEADER_DIRS, {".hpp"}):
        text = open(path, encoding="utf-8").read()
        lines = text.splitlines()
        if "#pragma once" not in text:
            out.append(Violation(rel(root, path), 1, "pragma-once",
                                 "header lacks #pragma once"))
        if not any(l.lstrip().startswith("/// \\file") for l in lines[:5]):
            out.append(Violation(rel(root, path), 1, "file-doc",
                                 "header must open with a `/// \\file` doc block"))
        code = strip_comments_and_strings(text)
        for lineno, line in enumerate(code.splitlines(), 1):
            if USING_NAMESPACE_RE.search(line):
                out.append(Violation(rel(root, path), lineno, "using-namespace",
                                     "`using namespace` leaks into every includer"))
    return out


def check_include_order(root):
    out = []
    src = os.path.join(root, LIBRARY_DIR)
    for path in iter_files(root, (LIBRARY_DIR,), {".cpp"}):
        relpath = rel(root, path)
        includes = []  # (lineno, style, target)
        for lineno, line in enumerate(open(path, encoding="utf-8").read().splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if m:
                includes.append((lineno, m.group(1), m.group(2)))
        if not includes:
            continue
        own = os.path.splitext(os.path.relpath(path, src))[0].replace(os.sep, "/") + ".hpp"
        if os.path.exists(os.path.join(src, own)):
            first = includes[0]
            if not (first[1] == '"' and first[2] == own):
                out.append(Violation(relpath, first[0], "include-order",
                                     f'own header "{own}" must be the first include'))
        seen = {}
        for lineno, style, target in includes:
            if target in seen:
                out.append(Violation(relpath, lineno, "include-order",
                                     f"duplicate include of {target} "
                                     f"(first at line {seen[target]})"))
            else:
                seen[target] = lineno
        for lineno, style, target in includes:
            exists_in_src = os.path.exists(os.path.join(src, target))
            if style == "<" and exists_in_src:
                out.append(Violation(relpath, lineno, "include-order",
                                     f"project header <{target}> must use quotes"))
            if style == '"' and not exists_in_src:
                out.append(Violation(relpath, lineno, "include-order",
                                     f'"{target}" is not a project header; use <...>'))
        # Each contiguous run of same-style includes must be sorted (the own
        # header, always first, is excluded from the ordering requirement).
        run = []
        prev_lineno = None
        prev_style = None
        body = includes[1:] if includes and includes[0][2] == own else includes
        for lineno, style, target in body + [(None, None, None)]:
            contiguous = prev_lineno is not None and lineno == prev_lineno + 1
            if style == prev_style and contiguous:
                run.append((lineno, target))
            else:
                if len(run) > 1 and [t for _, t in run] != sorted(t for _, t in run):
                    out.append(Violation(relpath, run[0][0], "include-order",
                                         "include block is not alphabetically sorted"))
                run = [(lineno, target)] if style else []
            prev_lineno, prev_style = lineno, style
    return out


def check_build_artifacts(root):
    try:
        tracked = subprocess.run(
            ["git", "-C", root, "ls-files", "--cached"],
            capture_output=True, text=True, check=True).stdout.splitlines()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return []  # not a git checkout (e.g. exported tarball): nothing to check
    out = []
    for path in tracked:
        for pat in TRACKED_ARTIFACT_RES:
            if pat.search(path):
                out.append(Violation(path, 1, "build-artifacts",
                                     "build artifact is tracked by git; "
                                     "remove it and rely on .gitignore"))
                break
    return out


def check_raw_element_loop(root):
    out = []
    for d in HOT_PATH_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for path in iter_files(root, (d,), {".hpp", ".cpp"}):
            code = strip_comments_and_strings(open(path, encoding="utf-8").read())
            for lineno, line in enumerate(code.splitlines(), 1):
                if RAW_ELEMENT_LOOP_RE.search(line):
                    out.append(Violation(
                        rel(root, path), lineno, "raw-element-loop",
                        "raw from-zero element loop in hot-path code; "
                        "dispatch it through "
                        "device::Backend::parallel_for_blocked"))
    return out


def check_raw_ofstream(root):
    out = []
    exempt = {p.replace(os.sep, "/") for p in OFSTREAM_EXEMPT}
    for d in DURABLE_OUTPUT_DIRS:
        if not os.path.isdir(os.path.join(root, d)):
            continue
        for path in iter_files(root, (d,), {".hpp", ".cpp"}):
            if rel(root, path) in exempt:
                continue
            code = strip_comments_and_strings(open(path, encoding="utf-8").read())
            for lineno, line in enumerate(code.splitlines(), 1):
                if RAW_OFSTREAM_RE.search(line):
                    out.append(Violation(
                        rel(root, path), lineno, "raw-ofstream",
                        "direct std::ofstream in durable-output code; a crash "
                        "mid-write leaves a torn file — use "
                        "io::atomic_write_file / io::AtomicFileWriter"))
    return out


def check_raw_rename_fsync(root):
    out = []
    exempt = {p.replace(os.sep, "/") for p in RENAME_FSYNC_EXEMPT}
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath in exempt:
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if RAW_RENAME_FSYNC_RE.search(line):
                out.append(Violation(
                    relpath, lineno, "raw-rename-fsync",
                    "raw rename()/fsync() outside the sanctioned durable-"
                    "write sites; use io::atomic_write_file / "
                    "io::AtomicFileWriter or io::DurableAppendWriter"))
    return out


def check_raw_clock(root):
    out = []
    exempt = {p.replace(os.sep, "/") for p in CLOCK_EXEMPT}
    exempt_dirs = tuple(d.replace(os.sep, "/") + "/" for d in CLOCK_EXEMPT_DIRS)
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath in exempt or relpath.startswith(exempt_dirs):
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if RAW_CLOCK_RE.search(line):
                out.append(Violation(
                    relpath, lineno, "raw-clock",
                    "direct clock read in library code; time regions with "
                    "Profiler (shares the telemetry trace epoch) or ad-hoc "
                    "durations with telemetry::Stopwatch"))
    return out


def check_raw_thread(root):
    out = []
    exempt_dirs = tuple(d.replace(os.sep, "/") + "/" for d in THREAD_EXEMPT_DIRS)
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath.startswith(exempt_dirs):
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if RAW_THREAD_RE.search(line):
                out.append(Violation(
                    relpath, lineno, "raw-thread",
                    "raw std::thread in library code bypasses the thread "
                    "budget; use device::Backend workers, comm::run_parallel "
                    "ranks, or the sched:: worker pool"))
    return out


def check_case_registry(root):
    out = []
    for path in iter_files(root, CASE_PLUGIN_DIRS, {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath.startswith(CASE_PLUGIN_EXEMPT_PREFIX):
            continue
        text = open(path, encoding="utf-8").read()
        # Include directives live inside string-literal quotes, which the
        # stripper blanks — match them on the raw lines. Type names are
        # matched on stripped code so comments mentioning them stay legal.
        for lineno, line in enumerate(text.splitlines(), 1):
            if CASE_PLUGIN_INCLUDE_RE.match(line):
                out.append(Violation(
                    relpath, lineno, "case-registry",
                    "plugin-private case header included outside src/case/; "
                    "resolve scenarios through case/registry.hpp "
                    "(cases::resolve_case) instead"))
        code = strip_comments_and_strings(text)
        for lineno, line in enumerate(code.splitlines(), 1):
            m = CASE_PLUGIN_TYPE_RE.search(line)
            if m:
                out.append(Violation(
                    relpath, lineno, "case-registry",
                    f"direct use of {m.group(1)} outside src/case/; build "
                    "cases through the registry (cases::resolve_case + "
                    "make_case)"))
    return out


def check_raw_ndjson_read(root):
    out = []
    exempt = {p.replace(os.sep, "/") for p in NDJSON_READ_EXEMPT}
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath in exempt or relpath.startswith(NDJSON_READ_EXEMPT_PREFIXES):
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = RAW_NDJSON_READ_RE.search(line)
            if m:
                out.append(Violation(
                    relpath, lineno, "raw-ndjson-read",
                    f"raw NDJSON protocol read ({m.group(1)}) outside the "
                    "sanctioned fold sites; use sched::read_manifest or "
                    "obs::CampaignMonitor"))
    return out


def check_spool_confinement(root):
    out = []
    for path in iter_files(root, SPOOL_CONFINE_DIRS, {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath.startswith(SPOOL_CONFINE_EXEMPT_PREFIX):
            continue
        # Path literals live inside strings, so keep them; comments that
        # merely mention the spool are blanked and stay legal.
        code = strip_comments_and_strings(
            open(path, encoding="utf-8").read(), keep_strings=True)
        for lineno, line in enumerate(code.splitlines(), 1):
            if SPOOL_LITERAL_RE.search(line):
                out.append(Violation(
                    relpath, lineno, "spool-confinement",
                    "spool path literal outside src/svc/; the spool layout "
                    "is private — submit through svc::submit_text / "
                    "svc::request_control, admit through "
                    "svc::admit_spool_file"))
    return out


def check_raw_tensor_call(root):
    out = []
    for path in iter_files(root, (LIBRARY_DIR,), {".hpp", ".cpp"}):
        relpath = rel(root, path)
        if relpath.startswith(TENSOR_CALL_EXEMPT_PREFIX):
            continue
        code = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = RAW_TENSOR_CALL_RE.search(line)
            if m:
                out.append(Violation(
                    relpath, lineno, "raw-tensor-call",
                    f"direct {m.group(1)}() call outside src/field/ bypasses "
                    "the autotuned kernel selection; dispatch through "
                    "ctx.kern() (operators::Context) or a "
                    "field::TensorKernels table"))
    return out


ALL_CHECKS = [
    check_raw_abort,
    check_stray_stdout,
    check_headers,
    check_include_order,
    check_build_artifacts,
    check_raw_element_loop,
    check_raw_ofstream,
    check_raw_rename_fsync,
    check_raw_clock,
    check_raw_thread,
    check_case_registry,
    check_raw_ndjson_read,
    check_spool_confinement,
    check_raw_tensor_call,
]


def lint(root):
    violations = []
    for check in ALL_CHECKS:
        violations.extend(check(root))
    return violations


# ---- self-test --------------------------------------------------------------

SEEDED = {
    "src/bad/raw_abort.cpp": (
        "raw-abort",
        '#include <cstdlib>\nvoid f(int x) { if (x) abort(); }\n'),
    "src/bad/raw_assert.cpp": (
        "raw-abort",
        '#include <cassert>\nvoid g(int x) { assert(x > 0); }\n'),
    "src/bad/stray_stdout.cpp": (
        "stray-stdout",
        '#include <iostream>\nvoid h() { std::cout << "hi"; }\n'),
    "src/bad/no_pragma.hpp": (
        "pragma-once",
        "/// \\file no_pragma.hpp\nint i();\n"),
    "src/bad/no_doc.hpp": (
        "file-doc",
        "#pragma once\nint j();\n"),
    "src/bad/using_ns.hpp": (
        "using-namespace",
        "/// \\file using_ns.hpp\n#pragma once\nusing namespace std;\n"),
    "src/bad/order.cpp": (
        "include-order",
        '#include <vector>\n#include "bad/order.hpp"\n'),
    "src/bad/order.hpp": (
        None,
        "/// \\file order.hpp\n#pragma once\nint k();\n"),
    "src/bad/unsorted.cpp": (
        "include-order",
        '#include "bad/unsorted.hpp"\n\n#include <vector>\n#include <atomic>\n'),
    "src/bad/unsorted.hpp": (
        None,
        "/// \\file unsorted.hpp\n#pragma once\nint m();\n"),
    "src/good/clean.cpp": (
        None,
        '#include "good/clean.hpp"\n\n#include <atomic>\n#include <vector>\n\n'
        'int n() { return 0; }\n'),
    "src/good/clean.hpp": (
        None,
        "/// \\file clean.hpp\n#pragma once\nint n();\n"),
    "src/operators/raw_loop.cpp": (
        "raw-element-loop",
        "void f(int nelem) {\n"
        "  for (lidx_t e = 0; e < nelem; ++e) {}\n"
        "}\n"),
    "src/operators/dispatched_loop.cpp": (
        None,
        "void g(int e0, int e1) {\n"
        "  for (lidx_t e = e0; e < e1; ++e) {}\n"
        "  for (lidx_t q = 0; q < npe; ++q) {}\n"
        "}\n"),
    "src/fluid/raw_write.cpp": (
        "raw-ofstream",
        '#include <fstream>\nvoid w() { std::ofstream out("x.ckpt"); }\n'),
    "src/io/atomic_file.cpp": (
        None,  # the one sanctioned std::ofstream site
        '#include <fstream>\nvoid a() { std::ofstream out("x.tmp"); }\n'),
    "src/bad/raw_rename.cpp": (
        "raw-rename-fsync",
        '#include <filesystem>\nvoid f() {\n'
        '  std::filesystem::rename("a.tmp", "a");\n}\n'),
    "src/bad/raw_fsync.cpp": (
        "raw-rename-fsync",
        "#include <unistd.h>\nvoid g(int fd) { fsync(fd); }\n"),
    "src/bad/raw_posix_rename.cpp": (
        "raw-rename-fsync",
        '#include <cstdio>\nvoid h() { ::rename("a.tmp", "a"); }\n'),
    "src/good/wrapped_rename.cpp": (
        None,  # wrapper names must not match the raw-rename-fsync rule
        "void rename_file(const char*, const char*);\n"
        "void fsync_path(const char*);\nvoid w() {\n"
        '  rename_file("a.tmp", "a");\n  fsync_path("a");\n}\n'),
    "src/io/durable_append.cpp": (
        None,  # sanctioned fsync/ofstream site (append journal)
        '#include <fstream>\n#include <unistd.h>\n'
        'void d(int fd) {\n  std::ofstream out("j.ndjson");\n'
        '  ::fsync(fd);\n}\n'),
    "src/bad/raw_clock.cpp": (
        "raw-clock",
        "#include <chrono>\nvoid t() {\n"
        "  auto t0 = std::chrono::steady_clock::now();\n"
        "  (void)t0;\n}\n"),
    "src/telemetry/clock_owner.cpp": (
        None,  # the telemetry layer owns the shared epoch
        "#include <chrono>\nvoid e() {\n"
        "  auto t0 = std::chrono::steady_clock::now();\n"
        "  (void)t0;\n}\n"),
    "src/fluid/raw_thread.cpp": (
        "raw-thread",
        "#include <thread>\nvoid r() {\n"
        "  std::thread t([] {});\n  t.join();\n}\n"),
    "src/sched/pool_owner.cpp": (
        None,  # the scheduler owns budgeted worker threads
        "#include <thread>\nvoid p() {\n"
        "  std::thread t([] {});\n  t.join();\n}\n"),
    "src/case/rbc.hpp": (
        None,  # seeded so the bad include below targets a real project header
        "/// \\file rbc.hpp\n#pragma once\n"
        "namespace felis::rbc { class RbcSimulation; }\n"),
    "src/bad/direct_case_include.cpp": (
        "case-registry",
        '#include "case/rbc.hpp"\nvoid f() {}\n'),
    "src/bad/direct_case_ctor.cpp": (
        "case-registry",
        "namespace felis::rbc { class RbcSimulation; }\n"
        "void g(felis::rbc::RbcSimulation* sim);\n"),
    "examples/direct_case_example.cpp": (
        "case-registry",
        '#include "case/ihc.hpp"\nint main() { return 0; }\n'),
    "src/case/plugin_site.cpp": (
        None,  # src/case/ is the sanctioned home of plugin internals
        '#include "case/rbc.hpp"\n'
        "void reg(felis::rbc::RbcSimulation*) {}\n"),
    "src/good/registry_host.cpp": (
        None,  # resolving through the registry is the sanctioned host path
        '#include "case/registry.hpp"\nvoid h() {}\n'),
    "src/case/registry.hpp": (
        None,
        "/// \\file registry.hpp\n#pragma once\n"
        "namespace felis::cases { class Registry; }\n"),
    "src/bad/raw_ndjson.cpp": (
        "raw-ndjson-read",
        "#include <string>\nvoid f(const std::string& line) {\n"
        "  bool ok = false;\n"
        "  auto s = sched::extract_json_string(line, \"state\", &ok);\n"
        "  (void)s;\n}\n"),
    "src/obs/monitor_site.cpp": (
        None,  # the campaign monitor is a sanctioned fold site
        "#include <string>\nvoid g(const std::string& line) {\n"
        "  sched::apply_manifest_line(state, line);\n"
        "  auto t = sched::extract_json_number(line, \"t\");\n  (void)t;\n}\n"),
    "src/sched/manifest.cpp": (
        None,  # the protocol owner defines and uses the scanners
        "#include <string>\nvoid h(const std::string& line) {\n"
        "  auto m = extract_json_metrics(line);\n  (void)m;\n}\n"),
    "src/good/manifest_consumer.cpp": (
        None,  # whole-file folds go through read_manifest
        "#include <string>\nvoid r(const std::string& path) {\n"
        "  auto state = sched::read_manifest(path);\n  (void)state;\n}\n"),
    "src/bad/spool_path.cpp": (
        "spool-confinement",
        "#include <string>\nstd::string f(const std::string& dir) {\n"
        '  return dir + "/spool/sub.case";\n}\n'),
    "src/bad/spool_control.cpp": (
        "spool-confinement",
        "#include <fstream>\nvoid g() {\n"
        '  std::ifstream in("out/spool/ctl-drain.cmd");\n}\n'),
    "examples/spool_client.cpp": (
        "spool-confinement",
        '#include <string>\nint main() {\n'
        '  std::string p = "spool";\n  return p.empty();\n}\n'),
    "src/svc/spool_owner.cpp": (
        None,  # src/svc/ owns the layout and may spell its paths
        "#include <string>\nstd::string d(const std::string& dir) {\n"
        '  return dir + "/spool/" + "ctl-shutdown.cmd";\n}\n'),
    "src/good/spool_prose.cpp": (
        None,  # prose and comments about the spool are not path literals
        "#include <string>\n// the spool/ admission path is in src/svc/\n"
        'std::string help() { return "Service-mode spool counters"; }\n'),
    "src/svc/poller_thread.cpp": (
        None,  # the service's spool poller is a sanctioned thread owner
        "#include <thread>\nvoid s() {\n"
        "  std::thread t([] {});\n  t.join();\n}\n"),
    "src/svc/recovery_fold.cpp": (
        None,  # the service resumes half-admitted work off the fold
        "#include <string>\nvoid r(const std::string& line) {\n"
        "  sched::apply_manifest_line(state, line);\n}\n"),
    "src/precon/raw_tensor.cpp": (
        "raw-tensor-call",
        "void f(const double* u, double* o, int n) {\n"
        "  field::apply_axis0(op, u, o, n, n);\n}\n"),
    "src/operators/table_dispatch.cpp": (
        None,  # table dispatch and variant names are the sanctioned forms
        "void g(const double* u, double* o, int n) {\n"
        "  kern.axis0(op, u, o, n, n);\n"
        "  field::apply_axis0_simd(op, u, o, n, n);\n"
        "  auto* fn = &field::apply_axis0;\n  (void)fn;\n}\n"),
    "src/field/tensor_site.cpp": (
        None,  # src/field/ owns the kernels and may call them raw
        "void h(const double* u, double* o, int n) {\n"
        "  apply_axis0(op, u, o, n, n);\n  grad_ref(op, u, o, o, o, n);\n}\n"),
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for relp, (_, content) in SEEDED.items():
            path = os.path.join(tmp, relp)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        subprocess.run(["git", "init", "-q", tmp], check=True,
                       capture_output=True)
        os.makedirs(os.path.join(tmp, "build"), exist_ok=True)
        with open(os.path.join(tmp, "build", "CMakeCache.txt"), "w") as f:
            f.write("// seeded artifact\n")
        subprocess.run(["git", "-C", tmp, "add", "-f", "."], check=True,
                       capture_output=True)

        violations = lint(tmp)
        by_rule = {}
        for v in violations:
            by_rule.setdefault(v.rule, []).append(v)

        for relp, (rule, _) in SEEDED.items():
            if rule is None:
                continue
            hits = [v for v in by_rule.get(rule, []) if v.path == relp]
            if not hits:
                failures.append(f"rule '{rule}' did not fire on seeded {relp}")
        if not by_rule.get("build-artifacts"):
            failures.append("rule 'build-artifacts' did not fire on seeded "
                            "build/CMakeCache.txt")
        clean_paths = {relp for relp, (rule, _) in SEEDED.items() if rule is None}
        clean_hits = [v for v in violations
                      if v.path.startswith("src/good/") or v.path in clean_paths]
        for v in clean_hits:
            failures.append(f"false positive on clean file: {v}")

    if failures:
        for f in failures:
            print(f"felis-lint self-test FAILED: {f}")
        return 1
    print(f"felis-lint self-test passed ({len(SEEDED)} seeded files, "
          f"all rules fired, no false positives).")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", help="repository root to lint")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on seeded violations")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.root:
        ap.error("--root is required unless --self-test is given")
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"felis-lint: '{root}' is not a felis tree (no src/ directory).",
              file=sys.stderr)
        return 2
    violations = lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"felis-lint: {len(violations)} violation(s).")
        return 1
    print("felis-lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
